//! The common workload interface and shared random-input helpers.
//!
//! A workload is a schema, a loader and a *mix* of transactions, each defined
//! exactly once as a declarative [`TxnProgram`] (see
//! `dora_core::program`). [`Workload::next_program`] draws one transaction
//! from the mix; the execution engines compile it for their architecture
//! (`compile_baseline` for the conventional engine, `compile_dora` for
//! DORA), so no workload ever writes a transaction body twice.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::Rng;

use dora_common::prelude::*;
use dora_core::{DoraEngine, ProgramTemplate, TxnProgram};
use dora_metrics::LatencyHistogram;
use dora_storage::Database;

/// A benchmark workload: schema, loader and a transaction mix expressed as
/// single-source [`TxnProgram`]s.
pub trait Workload: Send + Sync {
    /// Short name used in reports ("TM1", "TPC-B", "TPC-C OrderStatus", ...).
    fn name(&self) -> &'static str;

    /// Creates the workload's tables and indexes.
    fn create_schema(&self, db: &Database) -> DbResult<()>;

    /// Populates the tables at the workload's configured scale.
    fn load(&self, db: &Database) -> DbResult<()>;

    /// Binds every table of the workload to DORA executors.
    fn bind_dora(&self, engine: &DoraEngine, executors_per_table: usize) -> DbResult<()>;

    /// The mix-selection hook: every transaction-type label this workload's
    /// mix can produce ([`TxnProgram::name`] of any program returned by
    /// [`next_program`](Self::next_program) is one of these).
    /// [`WorkloadStats::for_workload`] pre-registers them so per-type tallies
    /// have stable rows even for types that never fired.
    fn txn_labels(&self) -> &'static [&'static str];

    /// Draws one transaction from the workload's mix (inputs generated from
    /// `rng`) as a declarative program, defined once and compiled by the
    /// caller for whichever execution architecture is running it.
    fn next_program(&self, db: &Database, rng: &mut SmallRng) -> DbResult<TxnProgram>;

    /// Static step templates for the bind-time conflict analysis: one
    /// [`ProgramTemplate`] per program the mix can produce, with each step's
    /// table, routing-key shape and read/write column sets declared
    /// abstractly. The default (no templates) disables conflict analysis for
    /// the workload — no probes are elided and no program is auto-serialized.
    fn conflict_templates(&self, _db: &Database) -> DbResult<Vec<ProgramTemplate>> {
        Ok(Vec::new())
    }

    /// Convenience: create the schema and load the data in one call.
    fn setup(&self, db: &Database) -> DbResult<()> {
        self.create_schema(db)?;
        self.load(db)
    }
}

/// Per-transaction-type outcome tallies.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OutcomeCounts {
    /// Transactions committed.
    pub committed: u64,
    /// Transactions aborted for workload reasons.
    pub aborted: u64,
    /// Transactions that exhausted a conventional engine's retry budget.
    pub gave_up: u64,
}

/// One transaction type's full tally: outcomes plus response-time samples
/// (pg_meter-style per-type reporting — commits, aborts, gave-up, error rate
/// and mean/p99 response time in one row).
#[derive(Debug, Default, Clone)]
pub struct TxnTypeStats {
    /// Outcome tallies.
    pub counts: OutcomeCounts,
    /// Response-time samples for *every* outcome (aborts take time too).
    pub latency: LatencyHistogram,
}

impl TxnTypeStats {
    /// Transactions of this type that ran (any outcome).
    pub fn total(&self) -> u64 {
        self.counts.committed + self.counts.aborted + self.counts.gave_up
    }

    /// Fraction of runs that did not commit (0.0 when the type never fired).
    pub fn error_rate(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            (self.counts.aborted + self.counts.gave_up) as f64 / total as f64
        }
    }
}

/// Shared counters a workload can use to track per-transaction-type outcomes
/// (used by the intra-transaction-parallelism and abort-rate experiments).
/// Retry exhaustion ([`TxnOutcome::GaveUp`]) is tallied separately from
/// workload aborts so contention-induced failures stay visible. When the
/// caller times each transaction, [`record_timed`](Self::record_timed) also
/// feeds a per-type latency histogram for mean/p99 response-time reporting.
#[derive(Debug, Default, Clone)]
pub struct WorkloadStats {
    inner: Arc<Mutex<std::collections::HashMap<&'static str, TxnTypeStats>>>,
}

impl WorkloadStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates statistics with every label of `workload`'s mix
    /// pre-registered (all-zero tallies), so
    /// [`all_counts`](Self::all_counts) lists a row per transaction type
    /// even before — or without — the type ever firing.
    pub fn for_workload(workload: &dyn Workload) -> Self {
        let stats = Self::new();
        {
            let mut inner = stats.inner.lock();
            for label in workload.txn_labels() {
                inner.entry(label).or_default();
            }
        }
        stats
    }

    /// Every registered transaction type with its tallies, sorted by label.
    pub fn all_counts(&self) -> Vec<(&'static str, OutcomeCounts)> {
        let mut rows: Vec<_> = self
            .inner
            .lock()
            .iter()
            .map(|(label, stats)| (*label, stats.counts))
            .collect();
        rows.sort_unstable_by_key(|(label, _)| *label);
        rows
    }

    /// Every registered transaction type with its full per-type statistics
    /// (outcomes *and* latency), sorted by label — the rows of the
    /// pg_meter-style summary table.
    pub fn all_stats(&self) -> Vec<(&'static str, TxnTypeStats)> {
        let mut rows: Vec<_> = self
            .inner
            .lock()
            .iter()
            .map(|(label, stats)| (*label, stats.clone()))
            .collect();
        rows.sort_unstable_by_key(|(label, _)| *label);
        rows
    }

    /// Records an outcome for a transaction type.
    pub fn record(&self, txn_type: &'static str, outcome: TxnOutcome) {
        let mut inner = self.inner.lock();
        let entry = inner.entry(txn_type).or_default();
        match outcome {
            TxnOutcome::Committed => entry.counts.committed += 1,
            TxnOutcome::Aborted => entry.counts.aborted += 1,
            TxnOutcome::GaveUp => entry.counts.gave_up += 1,
        }
    }

    /// Records an outcome *and* its response time for a transaction type.
    pub fn record_timed(&self, txn_type: &'static str, outcome: TxnOutcome, latency: Duration) {
        let mut inner = self.inner.lock();
        let entry = inner.entry(txn_type).or_default();
        match outcome {
            TxnOutcome::Committed => entry.counts.committed += 1,
            TxnOutcome::Aborted => entry.counts.aborted += 1,
            TxnOutcome::GaveUp => entry.counts.gave_up += 1,
        }
        entry.latency.record(latency);
    }

    /// Merges another recorder's tallies into this one (used to combine
    /// per-thread recorders after a run).
    pub fn merge(&self, other: &WorkloadStats) {
        if Arc::ptr_eq(&self.inner, &other.inner) {
            return;
        }
        let theirs = other.inner.lock();
        let mut ours = self.inner.lock();
        for (label, stats) in theirs.iter() {
            let entry = ours.entry(label).or_default();
            entry.counts.committed += stats.counts.committed;
            entry.counts.aborted += stats.counts.aborted;
            entry.counts.gave_up += stats.counts.gave_up;
            entry.latency.merge(&stats.latency);
        }
    }

    /// The tallies for a transaction type.
    pub fn outcome_counts(&self, txn_type: &'static str) -> OutcomeCounts {
        self.inner
            .lock()
            .get(txn_type)
            .map(|stats| stats.counts)
            .unwrap_or_default()
    }

    /// The full statistics (outcomes and latency) for a transaction type.
    pub fn type_stats(&self, txn_type: &'static str) -> TxnTypeStats {
        self.inner.lock().get(txn_type).cloned().unwrap_or_default()
    }
}

/// Test support: compiles `program` for the conventional engine and runs it
/// to completion with the same begin/commit/abort-and-retry loop as
/// `dora_engine::BaselineEngine` (which lives above this crate in the
/// dependency graph and therefore cannot be used here).
#[cfg(test)]
pub(crate) fn run_baseline_once(
    db: &Arc<Database>,
    program: TxnProgram,
) -> DbResult<BaselineOutcome> {
    let body = program.compile_baseline();
    for _attempt in 0..=db.config().max_retries {
        let txn = db.begin();
        match body(db, &txn) {
            Ok(()) => {
                db.commit(&txn)?;
                return Ok(BaselineOutcome::Committed);
            }
            Err(DbError::Deadlock { .. }) => {
                db.abort(&txn)?;
                continue;
            }
            Err(DbError::TxnAborted { .. }) => {
                db.abort(&txn)?;
                return Ok(BaselineOutcome::Aborted);
            }
            Err(other) => {
                db.abort(&txn)?;
                return Err(other);
            }
        }
    }
    Ok(BaselineOutcome::GaveUp)
}

/// Test support: draws the next transaction of `workload` and runs it on the
/// conventional retry loop, reducing the result to a [`TxnOutcome`].
#[cfg(test)]
pub(crate) fn run_baseline_mix(
    workload: &dyn Workload,
    db: &Arc<Database>,
    rng: &mut SmallRng,
) -> TxnOutcome {
    match workload
        .next_program(db, rng)
        .and_then(|program| run_baseline_once(db, program))
    {
        Ok(outcome) => outcome.into(),
        Err(_) => TxnOutcome::Aborted,
    }
}

/// Test support: draws the next transaction of `workload` and executes its
/// DORA compilation on `engine`.
#[cfg(test)]
pub(crate) fn run_dora_mix(
    workload: &dyn Workload,
    engine: &DoraEngine,
    rng: &mut SmallRng,
) -> TxnOutcome {
    match workload
        .next_program(engine.db(), rng)
        .and_then(|program| engine.execute(program.compile_dora()))
    {
        Ok(()) => TxnOutcome::Committed,
        Err(_) => TxnOutcome::Aborted,
    }
}

/// TPC-C's non-uniform random distribution NURand(A, x, y).
pub fn nurand(rng: &mut SmallRng, a: i64, x: i64, y: i64) -> i64 {
    let c = 42; // constant C, fixed for the run as the spec allows
    ((((rng.random_range(0..=a)) | (rng.random_range(x..=y))) + c) % (y - x + 1)) + x
}

/// TPC-C customer last-name generator: concatenates three syllables chosen by
/// the digits of `num` (0..=999).
pub fn c_last(num: i64) -> String {
    const SYLLABLES: [&str; 10] = [
        "BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
    ];
    let num = num.clamp(0, 999) as usize;
    format!(
        "{}{}{}",
        SYLLABLES[num / 100],
        SYLLABLES[(num / 10) % 10],
        SYLLABLES[num % 10]
    )
}

/// Random TPC-C-style last name for probing (uses NURand(255, 0, 999)).
pub fn random_c_last(rng: &mut SmallRng) -> String {
    c_last(nurand(rng, 255, 0, 999))
}

/// Uniform integer in `[low, high]` (inclusive).
pub fn uniform(rng: &mut SmallRng, low: i64, high: i64) -> i64 {
    rng.random_range(low..=high)
}

/// `true` with probability `percent` (0..=100).
pub fn chance(rng: &mut SmallRng, percent: u32) -> bool {
    rng.random_range(0..100u32) < percent
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn nurand_stays_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let value = nurand(&mut rng, 1023, 1, 3000);
            assert!((1..=3000).contains(&value));
        }
    }

    #[test]
    fn c_last_is_deterministic_and_composed_of_syllables() {
        assert_eq!(c_last(0), "BARBARBAR");
        assert_eq!(c_last(371), "PRICALLYOUGHT");
        assert_eq!(c_last(999), "EINGEINGEING");
        assert_eq!(c_last(-5), "BARBARBAR", "out-of-range values are clamped");
    }

    #[test]
    fn chance_and_uniform_hold_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut hits = 0;
        for _ in 0..10_000 {
            let v = uniform(&mut rng, 5, 9);
            assert!((5..=9).contains(&v));
            if chance(&mut rng, 25) {
                hits += 1;
            }
        }
        assert!(hits > 1_500 && hits < 3_500, "25% chance was {hits}/10000");
    }

    #[test]
    fn workload_stats_accumulate_three_way() {
        let stats = WorkloadStats::new();
        stats.record("payment", TxnOutcome::Committed);
        stats.record("payment", TxnOutcome::Committed);
        stats.record("payment", TxnOutcome::Aborted);
        stats.record("payment", TxnOutcome::GaveUp);
        assert_eq!(
            stats.outcome_counts("payment"),
            OutcomeCounts {
                committed: 2,
                aborted: 1,
                gave_up: 1
            }
        );
        assert_eq!(stats.outcome_counts("unknown"), OutcomeCounts::default());
    }

    #[test]
    fn record_timed_feeds_per_type_latency_and_merge_combines() {
        let stats = WorkloadStats::new();
        stats.record_timed("payment", TxnOutcome::Committed, Duration::from_micros(100));
        stats.record_timed("payment", TxnOutcome::Aborted, Duration::from_micros(300));
        let row = stats.type_stats("payment");
        assert_eq!(row.total(), 2);
        assert_eq!(row.counts.committed, 1);
        assert_eq!(row.error_rate(), 0.5);
        assert_eq!(row.latency.count(), 2);
        assert_eq!(row.latency.mean(), Duration::from_micros(200));
        // Untimed records still tally outcomes without latency samples.
        stats.record("payment", TxnOutcome::GaveUp);
        assert_eq!(stats.type_stats("payment").total(), 3);
        assert_eq!(stats.type_stats("payment").latency.count(), 2);
        // Merging a second per-thread recorder combines both dimensions.
        let other = WorkloadStats::new();
        other.record_timed("payment", TxnOutcome::Committed, Duration::from_micros(500));
        other.record_timed("deposit", TxnOutcome::Committed, Duration::from_micros(50));
        stats.merge(&other);
        assert_eq!(stats.type_stats("payment").total(), 4);
        assert_eq!(stats.type_stats("payment").latency.count(), 3);
        assert_eq!(stats.type_stats("deposit").counts.committed, 1);
        // Self-merge is a no-op, not a deadlock or a double-count.
        stats.merge(&stats.clone());
        assert_eq!(stats.type_stats("payment").total(), 4);
        assert!(stats.all_stats().windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn for_workload_preregisters_every_mix_label() {
        let workload = crate::tm1::Tm1::new(10);
        let stats = WorkloadStats::for_workload(&workload);
        let rows = stats.all_counts();
        assert_eq!(rows.len(), workload.txn_labels().len());
        assert!(rows
            .iter()
            .all(|(_, counts)| *counts == OutcomeCounts::default()));
        // Labels stay present (and sorted) alongside recorded types.
        stats.record(crate::tm1::Tm1::GET_SUBSCRIBER_DATA, TxnOutcome::Committed);
        let rows = stats.all_counts();
        assert_eq!(rows.len(), workload.txn_labels().len());
        assert!(rows.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(
            stats
                .outcome_counts(crate::tm1::Tm1::GET_SUBSCRIBER_DATA)
                .committed,
            1
        );
    }
}
