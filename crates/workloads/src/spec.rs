//! The common workload interface and shared random-input helpers.

use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::Rng;

use dora_common::prelude::*;
use dora_core::DoraEngine;
use dora_storage::{Database, TxnHandle};

/// What a conventional (thread-to-transaction) engine exposes to workloads:
/// run one closure-transaction to completion with full centralized
/// concurrency control, retrying deadlock victims.
///
/// The concrete implementation is `dora_engine::BaselineEngine`; workloads
/// only see this trait so that the workload crate stays independent of any
/// particular engine crate (the dependency points the other way: engines
/// consume workloads through [`Workload`]).
pub trait ConventionalExecutor: Send + Sync {
    /// The underlying storage manager.
    fn db(&self) -> &Arc<Database>;

    /// Executes `body` as one transaction, retrying deadlock victims up to
    /// the engine's configured limit.
    fn execute_txn(
        &self,
        body: &dyn Fn(&Database, &TxnHandle) -> DbResult<()>,
    ) -> DbResult<BaselineOutcome>;
}

/// A benchmark workload: schema, loader and transaction bodies for both
/// execution architectures.
pub trait Workload: Send + Sync {
    /// Short name used in reports ("TM1", "TPC-B", "TPC-C OrderStatus", ...).
    fn name(&self) -> &'static str;

    /// Creates the workload's tables and indexes.
    fn create_schema(&self, db: &Database) -> DbResult<()>;

    /// Populates the tables at the workload's configured scale.
    fn load(&self, db: &Database) -> DbResult<()>;

    /// Binds every table of the workload to DORA executors.
    fn bind_dora(&self, engine: &DoraEngine, executors_per_table: usize) -> DbResult<()>;

    /// Runs one transaction (drawn from the workload's mix) on a
    /// conventional thread-to-transaction engine.
    fn run_baseline(&self, engine: &dyn ConventionalExecutor, rng: &mut SmallRng) -> TxnOutcome;

    /// Runs one transaction (drawn from the workload's mix) on the DORA
    /// engine.
    fn run_dora(&self, engine: &DoraEngine, rng: &mut SmallRng) -> TxnOutcome;

    /// Convenience: create the schema and load the data in one call.
    fn setup(&self, db: &Database) -> DbResult<()> {
        self.create_schema(db)?;
        self.load(db)
    }
}

/// Shared counters a workload can use to track per-transaction-type outcomes
/// (used by the intra-transaction-parallelism and abort-rate experiments).
#[derive(Debug, Default, Clone)]
pub struct WorkloadStats {
    inner: Arc<Mutex<std::collections::HashMap<&'static str, (u64, u64)>>>,
}

impl WorkloadStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an outcome for a transaction type.
    pub fn record(&self, txn_type: &'static str, outcome: TxnOutcome) {
        let mut inner = self.inner.lock();
        let entry = inner.entry(txn_type).or_insert((0, 0));
        match outcome {
            TxnOutcome::Committed => entry.0 += 1,
            TxnOutcome::Aborted => entry.1 += 1,
        }
    }

    /// (committed, aborted) for a transaction type.
    pub fn outcome_counts(&self, txn_type: &'static str) -> (u64, u64) {
        self.inner.lock().get(txn_type).copied().unwrap_or((0, 0))
    }
}

/// A minimal [`ConventionalExecutor`] for this crate's unit tests: the same
/// begin/commit/abort-and-retry loop as `dora_engine::BaselineEngine`, which
/// lives above this crate in the dependency graph and therefore cannot be
/// used here. Doubling as a second trait impl, it keeps the workload bodies
/// honest about only using the trait surface.
#[cfg(test)]
pub(crate) struct TestExecutor {
    db: Arc<Database>,
    max_retries: usize,
}

#[cfg(test)]
impl TestExecutor {
    pub(crate) fn new(db: Arc<Database>) -> Self {
        let max_retries = db.config().max_retries;
        Self { db, max_retries }
    }
}

#[cfg(test)]
impl ConventionalExecutor for TestExecutor {
    fn db(&self) -> &Arc<Database> {
        &self.db
    }

    fn execute_txn(
        &self,
        body: &dyn Fn(&Database, &TxnHandle) -> DbResult<()>,
    ) -> DbResult<BaselineOutcome> {
        for _attempt in 0..=self.max_retries {
            let txn = self.db.begin();
            match body(&self.db, &txn) {
                Ok(()) => {
                    self.db.commit(&txn)?;
                    return Ok(BaselineOutcome::Committed);
                }
                Err(DbError::Deadlock { .. }) => {
                    self.db.abort(&txn)?;
                    continue;
                }
                Err(DbError::TxnAborted { .. }) => {
                    self.db.abort(&txn)?;
                    return Ok(BaselineOutcome::Aborted);
                }
                Err(other) => {
                    self.db.abort(&txn)?;
                    return Err(other);
                }
            }
        }
        Ok(BaselineOutcome::GaveUp)
    }
}

/// TPC-C's non-uniform random distribution NURand(A, x, y).
pub fn nurand(rng: &mut SmallRng, a: i64, x: i64, y: i64) -> i64 {
    let c = 42; // constant C, fixed for the run as the spec allows
    ((((rng.random_range(0..=a)) | (rng.random_range(x..=y))) + c) % (y - x + 1)) + x
}

/// TPC-C customer last-name generator: concatenates three syllables chosen by
/// the digits of `num` (0..=999).
pub fn c_last(num: i64) -> String {
    const SYLLABLES: [&str; 10] = [
        "BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
    ];
    let num = num.clamp(0, 999) as usize;
    format!(
        "{}{}{}",
        SYLLABLES[num / 100],
        SYLLABLES[(num / 10) % 10],
        SYLLABLES[num % 10]
    )
}

/// Random TPC-C-style last name for probing (uses NURand(255, 0, 999)).
pub fn random_c_last(rng: &mut SmallRng) -> String {
    c_last(nurand(rng, 255, 0, 999))
}

/// Uniform integer in `[low, high]` (inclusive).
pub fn uniform(rng: &mut SmallRng, low: i64, high: i64) -> i64 {
    rng.random_range(low..=high)
}

/// `true` with probability `percent` (0..=100).
pub fn chance(rng: &mut SmallRng, percent: u32) -> bool {
    rng.random_range(0..100u32) < percent
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn nurand_stays_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let value = nurand(&mut rng, 1023, 1, 3000);
            assert!((1..=3000).contains(&value));
        }
    }

    #[test]
    fn c_last_is_deterministic_and_composed_of_syllables() {
        assert_eq!(c_last(0), "BARBARBAR");
        assert_eq!(c_last(371), "PRICALLYOUGHT");
        assert_eq!(c_last(999), "EINGEINGEING");
        assert_eq!(c_last(-5), "BARBARBAR", "out-of-range values are clamped");
    }

    #[test]
    fn chance_and_uniform_hold_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut hits = 0;
        for _ in 0..10_000 {
            let v = uniform(&mut rng, 5, 9);
            assert!((5..=9).contains(&v));
            if chance(&mut rng, 25) {
                hits += 1;
            }
        }
        assert!(hits > 1_500 && hits < 3_500, "25% chance was {hits}/10000");
    }

    #[test]
    fn workload_stats_accumulate() {
        let stats = WorkloadStats::new();
        stats.record("payment", TxnOutcome::Committed);
        stats.record("payment", TxnOutcome::Committed);
        stats.record("payment", TxnOutcome::Aborted);
        assert_eq!(stats.outcome_counts("payment"), (2, 1));
        assert_eq!(stats.outcome_counts("unknown"), (0, 0));
    }
}
