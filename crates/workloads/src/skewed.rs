//! A zipfian-skewed counter workload for exercising adaptive repartitioning.
//!
//! One table of integer counters, one transaction type: read-modify-write a
//! single counter drawn from a [`DriftingHotSpot`] distribution. Because the
//! transaction is trivially cheap and every key routes on itself, per-executor
//! serviced-action counts mirror the key distribution exactly — which makes
//! this the sharpest probe for routing-rule quality the harness has: a
//! static even-range rule funnels almost everything to the executor owning
//! the hot range, while an adaptive rule should restore DORA's flat
//! contention profile.
//!
//! Two scenario families:
//! * **θ sweep** — fixed hot range, skew from uniform (`θ=0`) to harsh
//!   (`θ≥0.99`).
//! * **hot-spot migration** — the hot range drifts across the key domain as
//!   the run progresses, so any one-shot rebalance goes stale.

use std::sync::OnceLock;

use rand::rngs::SmallRng;

use dora_common::prelude::*;
use dora_core::{DoraEngine, OnMissing, TxnProgram};
use dora_storage::{ColumnDef, Database, TableSchema};

use crate::spec::Workload;
use crate::zipf::DriftingHotSpot;

/// The skewed-counters workload.
#[derive(Debug)]
pub struct SkewedCounters {
    keys: i64,
    generator: DriftingHotSpot,
    table: OnceLock<TableId>,
}

impl SkewedCounters {
    /// Transaction label used in reports.
    pub const BUMP: &'static str = "skewed-bump";

    /// Creates the workload over keys `1..=keys` with zipfian skew `theta`
    /// and a static hot range.
    pub fn new(keys: i64, theta: f64) -> Self {
        let keys = keys.max(1);
        Self {
            keys,
            generator: DriftingHotSpot::new(1, keys, theta),
            table: OnceLock::new(),
        }
    }

    /// Enables hot-spot migration: every `drift_every` transactions the hot
    /// range advances by `drift_step` keys.
    pub fn with_drift(mut self, drift_every: u64, drift_step: i64) -> Self {
        self.generator = DriftingHotSpot::new(1, self.keys, self.generator.zipfian().theta())
            .with_drift(drift_every, drift_step);
        self
    }

    /// Number of counter rows.
    pub fn keys(&self) -> i64 {
        self.keys
    }

    /// The key generator (diagnostics: current hot key, skew parameters).
    pub fn generator(&self) -> &DriftingHotSpot {
        &self.generator
    }

    fn table(&self, db: &Database) -> DbResult<TableId> {
        if let Some(table) = self.table.get() {
            return Ok(*table);
        }
        let table = db.table_id("skewed_counters")?;
        let _ = self.table.set(table);
        Ok(table)
    }

    /// The bump transaction, defined once: a single-phase, single-step
    /// read-modify-write routed on the counter id.
    pub fn bump_program(&self, db: &Database, key: i64) -> DbResult<TxnProgram> {
        let table = self.table(db)?;
        Ok(TxnProgram::new(Self::BUMP).update(
            Self::BUMP,
            table,
            Key::int(key),
            Key::int(key),
            OnMissing::Error,
            |_ctx, row| {
                let n = row[1].as_int()?;
                row[1] = Value::Int(n + 1);
                Ok(())
            },
        ))
    }
}

impl Workload for SkewedCounters {
    fn name(&self) -> &'static str {
        "Skewed-Counters"
    }

    fn create_schema(&self, db: &Database) -> DbResult<()> {
        db.create_table(TableSchema::new(
            "skewed_counters",
            vec![
                ColumnDef::new("id", ValueType::Int),
                ColumnDef::new("n", ValueType::Int),
            ],
            vec![0],
        ))?;
        Ok(())
    }

    fn load(&self, db: &Database) -> DbResult<()> {
        let table = self.table(db)?;
        for id in 1..=self.keys {
            db.load_row(table, vec![Value::Int(id), Value::Int(0)])?;
        }
        Ok(())
    }

    fn bind_dora(&self, engine: &DoraEngine, executors_per_table: usize) -> DbResult<()> {
        let table = self.table(engine.db())?;
        engine.bind_table(table, executors_per_table, 1, self.keys)
    }

    fn txn_labels(&self) -> &'static [&'static str] {
        &[Self::BUMP]
    }

    fn next_program(&self, db: &Database, rng: &mut SmallRng) -> DbResult<TxnProgram> {
        let key = self.generator.key(rng);
        self.bump_program(db, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{run_baseline_mix, run_dora_mix};
    use dora_core::DoraConfig;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn small() -> (Arc<Database>, SkewedCounters) {
        let db = Database::for_tests();
        let workload = SkewedCounters::new(100, 0.99);
        workload.setup(&db).unwrap();
        (db, workload)
    }

    fn total(db: &Database, workload: &SkewedCounters) -> i64 {
        let table = workload.table(db).unwrap();
        let txn = db.begin();
        let mut sum = 0i64;
        db.scan_table(&txn, table, CcMode::Full, |_, row| {
            sum += row[1].as_int().unwrap();
        })
        .unwrap();
        db.commit(&txn).unwrap();
        sum
    }

    #[test]
    fn load_creates_all_counters() {
        let (db, workload) = small();
        let table = workload.table(&db).unwrap();
        assert_eq!(db.row_count(table).unwrap(), 100);
    }

    #[test]
    fn baseline_applies_every_bump_exactly_once() {
        let (db, workload) = small();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..200 {
            assert_eq!(
                run_baseline_mix(&workload, &db, &mut rng),
                TxnOutcome::Committed
            );
        }
        assert_eq!(total(&db, &workload), 200);
    }

    #[test]
    fn dora_skews_executor_loads_toward_the_hot_range() {
        let (db, workload) = small();
        let workload = Arc::new(workload);
        let engine = Arc::new(DoraEngine::new(Arc::clone(&db), DoraConfig::for_tests()));
        workload.bind_dora(&engine, 4).unwrap();
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..400 {
            assert_eq!(
                run_dora_mix(workload.as_ref(), &engine, &mut rng),
                TxnOutcome::Committed
            );
        }
        assert_eq!(total(&db, &workload), 400);
        let table = workload.table(&db).unwrap();
        let loads = engine.executor_loads(table).unwrap();
        // Keys 1..=25 hold the zipfian head, so executor 0 must dominate
        // under the static even-range rule.
        assert!(
            loads[0] > loads[1] + loads[2] + loads[3],
            "hot-range executor must dominate: {loads:?}"
        );
        engine.shutdown();
    }

    #[test]
    fn drift_retargets_the_hot_range() {
        let workload = SkewedCounters::new(100, 1.2).with_drift(500, 50);
        assert_eq!(workload.generator().hottest_key(), 1);
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..500 {
            workload.generator().key(&mut rng);
        }
        assert_eq!(workload.generator().hottest_key(), 51);
    }
}
