//! Zipfian-skewed key generation and hot-spot migration.
//!
//! DORA's routing rules are only as good as the access distribution they
//! were sized for; Appendix A.2 of the paper concedes that static rules
//! crumble under skew. This module supplies the adversarial distributions
//! the adaptive repartitioner is exercised with:
//!
//! * [`Zipfian`] — rank `k` is drawn with probability proportional to
//!   `1/k^θ`, using the constant-time method of Gray et al. ("Quickly
//!   generating billion-record synthetic databases", SIGMOD '94), the same
//!   algorithm YCSB uses. `θ = 0` degenerates to uniform; `θ ≈ 1` is the
//!   classic harsh web skew.
//! * [`DriftingHotSpot`] — maps zipfian ranks onto a *contiguous* key range
//!   whose start drifts over time, so the hot range migrates across the
//!   domain and yesterday's balanced routing rule becomes today's hot spot.
//!   Ranks are deliberately *not* scrambled (unlike YCSB): keeping the hot
//!   keys adjacent is what makes the scenario a worst case for
//!   range-partitioned routing.

use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::SmallRng;
use rand::Rng;

/// A zipfian rank generator over `1..=n` with skew parameter `theta`.
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipfian {
    /// Creates a generator over `1..=n` ranks with skew `theta >= 0`.
    /// `theta` is nudged off exactly `1.0`, where the closed form has a
    /// pole.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n >= 1, "need at least one rank");
        assert!(theta >= 0.0, "theta must be non-negative");
        let theta = if (theta - 1.0).abs() < 1e-9 {
            1.0 - 1e-6
        } else {
            theta
        };
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Self {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    /// The generalized harmonic number `Σ_{i=1..n} 1/i^theta`.
    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Number of ranks.
    pub fn ranks(&self) -> u64 {
        self.n
    }

    /// The effective skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Probability of the hottest rank (diagnostics: how much of the load a
    /// single key attracts).
    pub fn top_rank_probability(&self) -> f64 {
        1.0 / self.zetan
    }

    /// Draws one rank in `1..=n`; rank 1 is the hottest.
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        if self.n == 1 {
            return 1;
        }
        let u: f64 = rng.random_range(0.0..1.0);
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 1;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 2;
        }
        let rank = 1 + (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.clamp(1, self.n)
    }
}

/// Maps zipfian ranks onto a contiguous hot range of an integer key domain
/// whose position drifts as draws accumulate.
///
/// Rank `k` maps to the key `k - 1` positions after the current hot-spot
/// offset (wrapping at the domain end), so the hottest keys always form one
/// contiguous run. With `drift_every = 0` the hot range is static.
///
/// The draw counter is atomic, so one generator can be shared by every
/// client thread and the hot spot drifts coherently across all of them.
#[derive(Debug)]
pub struct DriftingHotSpot {
    zipf: Zipfian,
    low: i64,
    span: i64,
    /// Draws between two drift steps (`0` disables drift).
    drift_every: u64,
    /// Keys the hot range advances per drift step.
    drift_step: i64,
    draws: AtomicU64,
}

impl DriftingHotSpot {
    /// Creates a generator over the inclusive key domain `[low, high]` with
    /// zipfian skew `theta` and no drift.
    pub fn new(low: i64, high: i64, theta: f64) -> Self {
        assert!(high >= low, "invalid key domain");
        let span = high - low + 1;
        Self {
            zipf: Zipfian::new(span as u64, theta),
            low,
            span,
            drift_every: 0,
            drift_step: 0,
            draws: AtomicU64::new(0),
        }
    }

    /// Enables drift: every `drift_every` draws the hot range advances by
    /// `drift_step` keys (wrapping around the domain).
    pub fn with_drift(mut self, drift_every: u64, drift_step: i64) -> Self {
        self.drift_every = drift_every;
        self.drift_step = drift_step;
        self
    }

    /// The underlying zipfian generator.
    pub fn zipfian(&self) -> &Zipfian {
        &self.zipf
    }

    /// The key the hottest rank currently maps to.
    pub fn hottest_key(&self) -> i64 {
        self.key_for_rank(1, self.draws.load(Ordering::Relaxed))
    }

    /// Draws one key from the domain.
    pub fn key(&self, rng: &mut SmallRng) -> i64 {
        let draw = self.draws.fetch_add(1, Ordering::Relaxed);
        self.key_for_rank(self.zipf.sample(rng), draw)
    }

    fn key_for_rank(&self, rank: u64, draw: u64) -> i64 {
        let offset = match draw.checked_div(self.drift_every) {
            // drift_every == 0: drift disabled.
            None => 0,
            Some(steps) => ((steps as i64).wrapping_mul(self.drift_step)).rem_euclid(self.span),
        };
        self.low + (offset + rank as i64 - 1).rem_euclid(self.span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn histogram(hot: &DriftingHotSpot, draws: usize, seed: u64) -> Vec<u64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut counts = vec![0u64; hot.span as usize];
        for _ in 0..draws {
            let key = hot.key(&mut rng);
            counts[(key - hot.low) as usize] += 1;
        }
        counts
    }

    #[test]
    fn zipf_stays_in_range_and_is_monotone_in_popularity() {
        let zipf = Zipfian::new(100, 0.99);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = vec![0u64; 100];
        for _ in 0..100_000 {
            let rank = zipf.sample(&mut rng);
            assert!((1..=100).contains(&rank));
            counts[rank as usize - 1] += 1;
        }
        assert!(
            counts[0] > counts[9] && counts[9] > counts[49],
            "lower ranks must be hotter: {:?}",
            &counts[..10]
        );
        // At theta=0.99 over 100 ranks the hottest rank draws ~19% of the
        // load; allow generous slack.
        let top = counts[0] as f64 / 100_000.0;
        let expected = zipf.top_rank_probability();
        assert!(
            (top - expected).abs() < 0.03,
            "top-rank share {top} vs analytic {expected}"
        );
    }

    #[test]
    fn theta_zero_is_roughly_uniform() {
        let hot = DriftingHotSpot::new(1, 50, 0.0);
        let counts = histogram(&hot, 50_000, 7);
        let (min, max) = (
            *counts.iter().min().unwrap() as f64,
            *counts.iter().max().unwrap() as f64,
        );
        assert!(
            max / min < 1.6,
            "uniform draw spread too wide: min={min} max={max}"
        );
    }

    #[test]
    fn higher_theta_concentrates_more() {
        let mild = histogram(&DriftingHotSpot::new(1, 200, 0.5), 40_000, 3);
        let harsh = histogram(&DriftingHotSpot::new(1, 200, 1.2), 40_000, 3);
        let top10 = |counts: &[u64]| counts.iter().take(10).sum::<u64>() as f64 / 40_000.0;
        assert!(
            top10(&harsh) > top10(&mild) + 0.2,
            "theta=1.2 top-10 share {} must clearly exceed theta=0.5's {}",
            top10(&harsh),
            top10(&mild)
        );
    }

    #[test]
    fn hot_keys_form_a_contiguous_run() {
        let hot = DriftingHotSpot::new(100, 299, 0.99);
        let counts = histogram(&hot, 50_000, 11);
        // The five hottest positions must be the first five keys of the
        // domain (no scrambling), in weakly decreasing order.
        for i in 0..4 {
            assert!(
                counts[i] >= counts[i + 1],
                "hot run must be contiguous and front-loaded: {:?}",
                &counts[..8]
            );
        }
        assert!(counts[0] > counts[50] * 5, "front must dominate mid-domain");
    }

    #[test]
    fn drift_moves_the_hot_spot() {
        let hot = DriftingHotSpot::new(1, 100, 0.99).with_drift(1_000, 25);
        assert_eq!(hot.hottest_key(), 1);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..1_000 {
            hot.key(&mut rng);
        }
        assert_eq!(hot.hottest_key(), 26, "one drift step of 25 keys");
        for _ in 0..3_000 {
            hot.key(&mut rng);
        }
        assert_eq!(hot.hottest_key(), 1, "drift wraps around the domain");
    }

    #[test]
    fn single_key_domain_always_returns_it() {
        let hot = DriftingHotSpot::new(42, 42, 0.99);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(hot.key(&mut rng), 42);
        }
    }
}
