//! TM1 — Nokia's Network Database Benchmark (also known as TATP).
//!
//! Seven extremely short transactions over four tables, modelling the home
//! location register of a mobile network. Three transactions are read-only,
//! four update; several fail on a sizable fraction of their inputs (the paper
//! notes ~25% of TM1 transactions abort due to invalid input, which is what
//! makes the UpdateSubscriberData experiment of Figure 11 interesting).
//!
//! All four tables route on the subscriber id, so in DORA every transaction's
//! actions carry the subscriber id as their identifier and each executor owns
//! a contiguous range of subscribers. Every transaction is defined exactly
//! once as a [`TxnProgram`]; the engines compile it for their architecture.

use std::sync::OnceLock;

use rand::rngs::SmallRng;

use dora_common::prelude::*;
use dora_core::{
    DoraEngine, KeyAtom, OnDuplicate, OnMissing, ProgramTemplate, Step, StepTemplate, TxnProgram,
};

use dora_storage::{ColumnDef, Database, IndexSpec, TableSchema};

use crate::spec::{uniform, Workload};

/// Which part of the TM1 mix to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tm1Mix {
    /// The full seven-transaction TATP mix.
    Full,
    /// Only GetSubscriberData — the workload of Figure 1.
    GetSubscriberDataOnly,
    /// Only UpdateSubscriberData — the workload of Figure 11.
    UpdateSubscriberDataOnly,
}

/// Cached table/index ids.
#[derive(Debug, Clone, Copy)]
struct Tm1Tables {
    subscriber: TableId,
    access_info: TableId,
    special_facility: TableId,
    call_forwarding: TableId,
    subscriber_by_nbr: IndexId,
}

/// The TM1 workload.
#[derive(Debug)]
pub struct Tm1 {
    subscribers: i64,
    mix: Tm1Mix,
    /// When `true`, UpdateSubscriberData uses the serialized flow graph
    /// (DORA-S); otherwise the parallel one (DORA-P). See Figure 11.
    serial_update_plan: bool,
    tables: OnceLock<Tm1Tables>,
}

impl Tm1 {
    /// Label for GetSubscriberData.
    pub const GET_SUBSCRIBER_DATA: &'static str = "tm1-get-subscriber-data";
    /// Label for GetNewDestination.
    pub const GET_NEW_DESTINATION: &'static str = "tm1-get-new-destination";
    /// Label for GetAccessData.
    pub const GET_ACCESS_DATA: &'static str = "tm1-get-access-data";
    /// Label for UpdateSubscriberData.
    pub const UPDATE_SUBSCRIBER_DATA: &'static str = "tm1-update-subscriber-data";
    /// Label for UpdateLocation.
    pub const UPDATE_LOCATION: &'static str = "tm1-update-location";
    /// Label for InsertCallForwarding.
    pub const INSERT_CALL_FORWARDING: &'static str = "tm1-insert-call-forwarding";
    /// Label for DeleteCallForwarding.
    pub const DELETE_CALL_FORWARDING: &'static str = "tm1-delete-call-forwarding";

    /// All seven transaction-type labels, in mix order.
    pub const ALL_LABELS: [&'static str; 7] = [
        Self::GET_SUBSCRIBER_DATA,
        Self::GET_NEW_DESTINATION,
        Self::GET_ACCESS_DATA,
        Self::UPDATE_SUBSCRIBER_DATA,
        Self::UPDATE_LOCATION,
        Self::INSERT_CALL_FORWARDING,
        Self::DELETE_CALL_FORWARDING,
    ];

    /// Creates a TM1 workload with `subscribers` subscribers and the full mix.
    pub fn new(subscribers: i64) -> Self {
        Self {
            subscribers: subscribers.max(1),
            mix: Tm1Mix::Full,
            serial_update_plan: false,
            tables: OnceLock::new(),
        }
    }

    /// Restricts the mix.
    pub fn with_mix(mut self, mix: Tm1Mix) -> Self {
        self.mix = mix;
        self
    }

    /// Selects the serialized UpdateSubscriberData plan (DORA-S).
    pub fn with_serial_update_plan(mut self, serial: bool) -> Self {
        self.serial_update_plan = serial;
        self
    }

    /// Number of subscribers loaded.
    pub fn subscribers(&self) -> i64 {
        self.subscribers
    }

    fn tables(&self, db: &Database) -> DbResult<Tm1Tables> {
        if let Some(tables) = self.tables.get() {
            return Ok(*tables);
        }
        let tables = Tm1Tables {
            subscriber: db.table_id("subscriber")?,
            access_info: db.table_id("access_info")?,
            special_facility: db.table_id("special_facility")?,
            call_forwarding: db.table_id("call_forwarding")?,
            subscriber_by_nbr: db.index_id("subscriber_by_nbr")?,
        };
        let _ = self.tables.set(tables);
        Ok(tables)
    }

    fn sub_nbr(s_id: i64) -> String {
        format!("{s_id:015}")
    }

    fn random_subscriber(&self, rng: &mut SmallRng) -> i64 {
        uniform(rng, 1, self.subscribers)
    }

    // ----- transaction programs (one definition per transaction) ------------

    /// GetSubscriberData: a single read-only step on the Subscriber table.
    pub fn get_subscriber_data_program(&self, db: &Database, s_id: i64) -> DbResult<TxnProgram> {
        let tables = self.tables(db)?;
        Ok(TxnProgram::new(Self::GET_SUBSCRIBER_DATA).read(
            "get-subscriber",
            tables.subscriber,
            Key::int(s_id),
            Key::int(s_id),
            OnMissing::Abort("subscriber missing"),
            |_ctx, _row| Ok(()),
        ))
    }

    /// GetNewDestination: probe the SpecialFacility, then (next phase,
    /// because of the control dependency) the CallForwarding record.
    pub fn get_new_destination_program(
        &self,
        db: &Database,
        s_id: i64,
        sf_type: i64,
        start_time: i64,
    ) -> DbResult<TxnProgram> {
        let tables = self.tables(db)?;
        Ok(TxnProgram::new(Self::GET_NEW_DESTINATION)
            .read(
                "probe-facility",
                tables.special_facility,
                Key::int(s_id),
                Key::int2(s_id, sf_type),
                OnMissing::Abort("facility inactive"),
                |ctx, row| {
                    if row[2].as_int()? == 1 {
                        Ok(())
                    } else {
                        Err(ctx.abort("facility inactive"))
                    }
                },
            )
            .rvp()
            .read(
                "probe-forwarding",
                tables.call_forwarding,
                Key::int(s_id),
                Key::int3(s_id, sf_type, start_time),
                OnMissing::Abort("no forwarding"),
                |_ctx, _row| Ok(()),
            ))
    }

    /// GetAccessData: one read-only step on AccessInfo.
    pub fn get_access_data_program(
        &self,
        db: &Database,
        s_id: i64,
        ai_type: i64,
    ) -> DbResult<TxnProgram> {
        let tables = self.tables(db)?;
        Ok(TxnProgram::new(Self::GET_ACCESS_DATA).read(
            "get-access-data",
            tables.access_info,
            Key::int(s_id),
            Key::int2(s_id, ai_type),
            OnMissing::Abort("no access info"),
            |_ctx, _row| Ok(()),
        ))
    }

    /// UpdateSubscriberData.
    ///
    /// One definition, two plans: the parallel plan (DORA-P) runs the
    /// Subscriber update and the SpecialFacility update in the same phase;
    /// the serial plan (DORA-S, Appendix A.4) orders the SpecialFacility
    /// update — which fails for 62.5% of inputs — first and serializes the
    /// graph, exactly the two plans Figure 11 compares.
    pub fn update_subscriber_data_program(
        &self,
        db: &Database,
        s_id: i64,
        sf_type: i64,
        bit: i64,
        data_a: i64,
        serial: bool,
    ) -> DbResult<TxnProgram> {
        let tables = self.tables(db)?;
        let subscriber_step = Step::update(
            "update-subscriber",
            tables.subscriber,
            Key::int(s_id),
            Key::int(s_id),
            OnMissing::Error,
            move |_ctx, row| {
                row[2] = Value::Int(bit);
                Ok(())
            },
        );
        let facility_step = Step::update(
            "update-facility",
            tables.special_facility,
            Key::int(s_id),
            Key::int2(s_id, sf_type),
            OnMissing::Abort("no such facility"),
            move |_ctx, row| {
                row[4] = Value::Int(data_a);
                Ok(())
            },
        );
        // The failure-prone step goes first under the serial plan so the
        // transaction fails before any other work is wasted.
        let (first, second) = if serial {
            (facility_step, subscriber_step)
        } else {
            (subscriber_step, facility_step)
        };
        Ok(TxnProgram::new(Self::UPDATE_SUBSCRIBER_DATA)
            .step(first)
            .step(second)
            .serialized(serial))
    }

    /// UpdateLocation: a secondary step resolves the subscriber through the
    /// `sub_nbr` secondary index (whose leaves carry the routing fields),
    /// then the routed step updates the record through its RID.
    pub fn update_location_program(
        &self,
        db: &Database,
        s_id: i64,
        location: i64,
    ) -> DbResult<TxnProgram> {
        let tables = self.tables(db)?;
        let nbr = Self::sub_nbr(s_id);
        Ok(TxnProgram::new(Self::UPDATE_LOCATION)
            .secondary("resolve-sub-nbr", tables.subscriber, move |ctx| {
                let hits = ctx.db.probe_secondary(
                    ctx.txn,
                    tables.subscriber_by_nbr,
                    &Key::from_values([nbr.clone()]),
                    ctx.cc(),
                )?;
                let Some(entry) = hits.first() else {
                    return Err(ctx.abort("unknown sub_nbr"));
                };
                // Stash the routing field and RID for the next phase.
                ctx.scratch
                    .put("s_id", entry.routing.leading_int().unwrap_or(s_id));
                ctx.scratch.put("rid", entry.rid.pack() as i64);
                Ok(())
            })
            .rvp()
            .custom(
                "update-location",
                tables.subscriber,
                Key::int(s_id),
                dora_core::LocalMode::Exclusive,
                move |ctx| {
                    let rid = Rid::unpack(ctx.scratch.get_int("rid")? as u64);
                    ctx.db
                        .update_rid(ctx.txn, tables.subscriber, rid, ctx.cc(), |row| {
                            row[4] = Value::Int(location);
                            Ok(())
                        })
                },
            ))
    }

    /// InsertCallForwarding: probe the facility, then insert the forwarding
    /// record. Under DORA the insert still takes a row-level lock through the
    /// centralized lock manager, as Section 4.2.1 requires.
    pub fn insert_call_forwarding_program(
        &self,
        db: &Database,
        s_id: i64,
        sf_type: i64,
        start_time: i64,
        end_time: i64,
    ) -> DbResult<TxnProgram> {
        let tables = self.tables(db)?;
        Ok(TxnProgram::new(Self::INSERT_CALL_FORWARDING)
            .read(
                "probe-facility",
                tables.special_facility,
                Key::int(s_id),
                Key::int2(s_id, sf_type),
                OnMissing::Abort("no such facility"),
                |_ctx, _row| Ok(()),
            )
            .rvp()
            .insert(
                "insert-forwarding",
                tables.call_forwarding,
                Key::int(s_id),
                OnDuplicate::Abort("forwarding exists"),
                move |_ctx| {
                    Ok(vec![
                        Value::Int(s_id),
                        Value::Int(sf_type),
                        Value::Int(start_time),
                        Value::Int(end_time),
                        Value::Text(format!("{:015}", s_id + 1)),
                    ])
                },
            ))
    }

    /// DeleteCallForwarding: a single exclusive step (the delete takes a
    /// centralized row lock inside the storage manager on either engine).
    pub fn delete_call_forwarding_program(
        &self,
        db: &Database,
        s_id: i64,
        sf_type: i64,
        start_time: i64,
    ) -> DbResult<TxnProgram> {
        let tables = self.tables(db)?;
        Ok(TxnProgram::new(Self::DELETE_CALL_FORWARDING).delete(
            "delete-forwarding",
            tables.call_forwarding,
            Key::int(s_id),
            Key::int3(s_id, sf_type, start_time),
            OnMissing::Abort("no forwarding to delete"),
        ))
    }

    /// Picks a transaction type according to the TATP mix (percentages are
    /// the standard ones).
    fn pick(&self, rng: &mut SmallRng) -> Tm1Txn {
        match self.mix {
            Tm1Mix::GetSubscriberDataOnly => return Tm1Txn::GetSubscriberData,
            Tm1Mix::UpdateSubscriberDataOnly => return Tm1Txn::UpdateSubscriberData,
            Tm1Mix::Full => {}
        }
        let roll = uniform(rng, 0, 99);
        match roll {
            0..=34 => Tm1Txn::GetSubscriberData,
            35..=44 => Tm1Txn::GetNewDestination,
            45..=79 => Tm1Txn::GetAccessData,
            80..=81 => Tm1Txn::UpdateSubscriberData,
            82..=95 => Tm1Txn::UpdateLocation,
            96..=97 => Tm1Txn::InsertCallForwarding,
            _ => Tm1Txn::DeleteCallForwarding,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tm1Txn {
    GetSubscriberData,
    GetNewDestination,
    GetAccessData,
    UpdateSubscriberData,
    UpdateLocation,
    InsertCallForwarding,
    DeleteCallForwarding,
}

impl Workload for Tm1 {
    fn name(&self) -> &'static str {
        match self.mix {
            Tm1Mix::Full => "TM1",
            Tm1Mix::GetSubscriberDataOnly => "TM1-GetSubscriberData",
            Tm1Mix::UpdateSubscriberDataOnly => "TM1-UpdateSubscriberData",
        }
    }

    fn create_schema(&self, db: &Database) -> DbResult<()> {
        db.create_table(TableSchema::new(
            "subscriber",
            vec![
                ColumnDef::new("s_id", ValueType::Int),
                ColumnDef::new("sub_nbr", ValueType::Text),
                ColumnDef::new("bit_1", ValueType::Int),
                ColumnDef::new("msc_location", ValueType::Int),
                ColumnDef::new("vlr_location", ValueType::Int),
            ],
            vec![0],
        ))?;
        db.create_table(TableSchema::new(
            "access_info",
            vec![
                ColumnDef::new("s_id", ValueType::Int),
                ColumnDef::new("ai_type", ValueType::Int),
                ColumnDef::new("data1", ValueType::Int),
                ColumnDef::new("data2", ValueType::Int),
                ColumnDef::new("data3", ValueType::Text),
            ],
            vec![0, 1],
        ))?;
        db.create_table(TableSchema::new(
            "special_facility",
            vec![
                ColumnDef::new("s_id", ValueType::Int),
                ColumnDef::new("sf_type", ValueType::Int),
                ColumnDef::new("is_active", ValueType::Int),
                ColumnDef::new("error_cntrl", ValueType::Int),
                ColumnDef::new("data_a", ValueType::Int),
            ],
            vec![0, 1],
        ))?;
        db.create_table(TableSchema::new(
            "call_forwarding",
            vec![
                ColumnDef::new("s_id", ValueType::Int),
                ColumnDef::new("sf_type", ValueType::Int),
                ColumnDef::new("start_time", ValueType::Int),
                ColumnDef::new("end_time", ValueType::Int),
                ColumnDef::new("numberx", ValueType::Text),
            ],
            vec![0, 1, 2],
        ))?;
        let subscriber = db.table_id("subscriber")?;
        db.create_index(IndexSpec {
            name: "subscriber_by_nbr".into(),
            table: subscriber,
            key_columns: vec![1],
            unique: true,
        })?;
        Ok(())
    }

    fn load(&self, db: &Database) -> DbResult<()> {
        let tables = self.tables(db)?;
        for s_id in 1..=self.subscribers {
            db.load_row(
                tables.subscriber,
                vec![
                    Value::Int(s_id),
                    Value::Text(Self::sub_nbr(s_id)),
                    Value::Int(0),
                    Value::Int((s_id * 13) % 1_000_000),
                    Value::Int((s_id * 17) % 1_000_000),
                ],
            )?;
            // 1..=4 access-info rows (deterministic per subscriber).
            let ai_count = (s_id % 4) + 1;
            for ai_type in 1..=ai_count {
                db.load_row(
                    tables.access_info,
                    vec![
                        Value::Int(s_id),
                        Value::Int(ai_type),
                        Value::Int((s_id + ai_type) % 256),
                        Value::Int((s_id * ai_type) % 256),
                        Value::Text("AAA".into()),
                    ],
                )?;
            }
            // 1..=4 special-facility rows; ~85% are active.
            let sf_count = ((s_id + 1) % 4) + 1;
            for sf_type in 1..=sf_count {
                let active = (s_id * 7 + sf_type * 3) % 100 < 85;
                db.load_row(
                    tables.special_facility,
                    vec![
                        Value::Int(s_id),
                        Value::Int(sf_type),
                        Value::Int(if active { 1 } else { 0 }),
                        Value::Int(0),
                        Value::Int((s_id + sf_type) % 256),
                    ],
                )?;
                // 0..=3 call-forwarding rows at start times 0/8/16.
                let cf_count = (s_id + sf_type) % 4;
                for cf in 0..cf_count {
                    db.load_row(
                        tables.call_forwarding,
                        vec![
                            Value::Int(s_id),
                            Value::Int(sf_type),
                            Value::Int(cf * 8),
                            Value::Int(cf * 8 + 8),
                            Value::Text(Self::sub_nbr(s_id + 1)),
                        ],
                    )?;
                }
            }
        }
        Ok(())
    }

    fn bind_dora(&self, engine: &DoraEngine, executors_per_table: usize) -> DbResult<()> {
        let tables = self.tables(engine.db())?;
        for table in [
            tables.subscriber,
            tables.access_info,
            tables.special_facility,
            tables.call_forwarding,
        ] {
            engine.bind_table(table, executors_per_table, 1, self.subscribers)?;
        }
        Ok(())
    }

    fn txn_labels(&self) -> &'static [&'static str] {
        match self.mix {
            Tm1Mix::Full => &Self::ALL_LABELS,
            Tm1Mix::GetSubscriberDataOnly => &[Self::GET_SUBSCRIBER_DATA],
            Tm1Mix::UpdateSubscriberDataOnly => &[Self::UPDATE_SUBSCRIBER_DATA],
        }
    }

    fn next_program(&self, db: &Database, rng: &mut SmallRng) -> DbResult<TxnProgram> {
        let txn_type = self.pick(rng);
        let s_id = self.random_subscriber(rng);
        let sf_type = uniform(rng, 1, 4);
        let ai_type = uniform(rng, 1, 4);
        let start_time = uniform(rng, 0, 2) * 8;
        let bit = uniform(rng, 0, 1);
        let data_a = uniform(rng, 0, 255);
        let location = uniform(rng, 0, 1_000_000);
        let end_time = start_time + uniform(rng, 1, 8);
        match txn_type {
            Tm1Txn::GetSubscriberData => self.get_subscriber_data_program(db, s_id),
            Tm1Txn::GetNewDestination => {
                self.get_new_destination_program(db, s_id, sf_type, start_time)
            }
            Tm1Txn::GetAccessData => self.get_access_data_program(db, s_id, ai_type),
            Tm1Txn::UpdateSubscriberData => self.update_subscriber_data_program(
                db,
                s_id,
                sf_type,
                bit,
                data_a,
                self.serial_update_plan,
            ),
            Tm1Txn::UpdateLocation => self.update_location_program(db, s_id, location),
            Tm1Txn::InsertCallForwarding => {
                self.insert_call_forwarding_program(db, s_id, sf_type, start_time, end_time)
            }
            Tm1Txn::DeleteCallForwarding => {
                self.delete_call_forwarding_program(db, s_id, sf_type, start_time)
            }
        }
    }

    /// Step templates mirroring the seven programs above, one per program the
    /// active mix can produce. Routes are all `[Param(s_id)]` (every table
    /// routes on the subscriber id); read/write column sets are exactly what
    /// each step's body touches, and abort rates follow the TATP invalid-input
    /// probabilities the loader induces.
    fn conflict_templates(&self, db: &Database) -> DbResult<Vec<ProgramTemplate>> {
        let tables = self.tables(db)?;
        let s_id = || vec![KeyAtom::Param("s_id")];
        let forwarding_key = || {
            vec![
                KeyAtom::Param("s_id"),
                KeyAtom::Param("sf_type"),
                KeyAtom::Param("start_time"),
            ]
        };
        let all = [
            ProgramTemplate::new(Self::GET_SUBSCRIBER_DATA).step(StepTemplate::read(
                "get-subscriber",
                tables.subscriber,
                s_id(),
            )),
            ProgramTemplate::new(Self::GET_NEW_DESTINATION)
                .step(
                    StepTemplate::read("probe-facility", tables.special_facility, s_id())
                        .reads([2])
                        .abort_rate(0.44),
                )
                .step(
                    StepTemplate::read("probe-forwarding", tables.call_forwarding, s_id())
                        .full_key(forwarding_key())
                        .abort_rate(0.5),
                ),
            ProgramTemplate::new(Self::GET_ACCESS_DATA).step(
                StepTemplate::read("get-access-data", tables.access_info, s_id()).abort_rate(0.375),
            ),
            ProgramTemplate::new(Self::UPDATE_SUBSCRIBER_DATA)
                .step(
                    StepTemplate::write("update-subscriber", tables.subscriber, s_id()).writes([2]),
                )
                .step(
                    StepTemplate::write("update-facility", tables.special_facility, s_id())
                        .writes([4])
                        .abort_rate(0.625),
                ),
            ProgramTemplate::new(Self::UPDATE_LOCATION)
                .step(StepTemplate::secondary(
                    "resolve-sub-nbr",
                    tables.subscriber,
                ))
                .step(
                    StepTemplate::write("update-location", tables.subscriber, s_id()).writes([4]),
                ),
            ProgramTemplate::new(Self::INSERT_CALL_FORWARDING)
                .step(
                    StepTemplate::read("probe-facility", tables.special_facility, s_id())
                        .abort_rate(0.375),
                )
                .step(
                    StepTemplate::insert("insert-forwarding", tables.call_forwarding, s_id())
                        .full_key(forwarding_key())
                        .abort_rate(0.3),
                ),
            ProgramTemplate::new(Self::DELETE_CALL_FORWARDING).step(
                StepTemplate::delete("delete-forwarding", tables.call_forwarding, s_id())
                    .full_key(forwarding_key())
                    .abort_rate(0.7),
            ),
        ];
        Ok(all
            .into_iter()
            .filter(|program| self.txn_labels().contains(&program.name()))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{run_baseline_mix, run_baseline_once, run_dora_mix};
    use dora_core::DoraConfig;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn small_tm1() -> (Arc<Database>, Tm1) {
        let db = Database::for_tests();
        let workload = Tm1::new(200);
        workload.setup(&db).unwrap();
        (db, workload)
    }

    #[test]
    fn schema_and_load_populate_all_tables() {
        let (db, workload) = small_tm1();
        let tables = workload.tables(&db).unwrap();
        assert_eq!(db.row_count(tables.subscriber).unwrap(), 200);
        assert!(db.row_count(tables.access_info).unwrap() >= 200);
        assert!(db.row_count(tables.special_facility).unwrap() >= 200);
        assert!(db.row_count(tables.call_forwarding).unwrap() > 0);
    }

    #[test]
    fn baseline_mix_commits_and_aborts() {
        let (db, workload) = small_tm1();
        let mut rng = SmallRng::seed_from_u64(11);
        let mut committed = 0;
        let mut aborted = 0;
        for _ in 0..300 {
            match run_baseline_mix(&workload, &db, &mut rng) {
                TxnOutcome::Committed => committed += 1,
                _ => aborted += 1,
            }
        }
        assert!(
            committed > 150,
            "most transactions should commit ({committed})"
        );
        assert!(aborted > 0, "TM1 has a sizable invalid-input abort rate");
    }

    #[test]
    fn dora_mix_commits_and_aborts() {
        let (db, workload) = small_tm1();
        let engine = DoraEngine::new(db, DoraConfig::for_tests());
        workload.bind_dora(&engine, 2).unwrap();
        let mut rng = SmallRng::seed_from_u64(12);
        let mut committed = 0;
        let mut aborted = 0;
        for _ in 0..300 {
            match run_dora_mix(&workload, &engine, &mut rng) {
                TxnOutcome::Committed => committed += 1,
                _ => aborted += 1,
            }
        }
        assert!(
            committed > 150,
            "most transactions should commit ({committed})"
        );
        assert!(aborted > 0);
        engine.shutdown();
    }

    #[test]
    fn baseline_and_dora_agree_on_final_state() {
        // Run the same deterministic sequence of UpdateLocation transactions
        // through both compilations of the same program (on separate
        // databases) and compare subscriber locations afterwards.
        let db_base = Database::for_tests();
        let db_dora = Database::for_tests();
        let workload_base = Tm1::new(50);
        let workload_dora = Tm1::new(50);
        workload_base.setup(&db_base).unwrap();
        workload_dora.setup(&db_dora).unwrap();
        let dora = DoraEngine::new(Arc::clone(&db_dora), DoraConfig::for_tests());
        workload_dora.bind_dora(&dora, 2).unwrap();

        for s_id in 1..=50i64 {
            let location = s_id * 1000;
            let program = workload_base
                .update_location_program(&db_base, s_id, location)
                .unwrap();
            assert_eq!(
                run_baseline_once(&db_base, program).unwrap(),
                BaselineOutcome::Committed
            );
            let program = workload_dora
                .update_location_program(&db_dora, s_id, location)
                .unwrap();
            dora.execute(program.compile_dora()).unwrap();
        }

        let tables_base = workload_base.tables(&db_base).unwrap();
        let tables_dora = workload_dora.tables(&db_dora).unwrap();
        let check_base = db_base.begin();
        let check_dora = db_dora.begin();
        for s_id in 1..=50i64 {
            let (_, row_base) = db_base
                .probe_primary(
                    &check_base,
                    tables_base.subscriber,
                    &Key::int(s_id),
                    false,
                    CcMode::Full,
                )
                .unwrap()
                .unwrap();
            let (_, row_dora) = db_dora
                .probe_primary(
                    &check_dora,
                    tables_dora.subscriber,
                    &Key::int(s_id),
                    false,
                    CcMode::Full,
                )
                .unwrap()
                .unwrap();
            assert_eq!(
                row_base[4], row_dora[4],
                "vlr_location must match for subscriber {s_id}"
            );
            assert_eq!(row_base[4], Value::Int(s_id * 1000));
        }
        db_base.commit(&check_base).unwrap();
        db_dora.commit(&check_dora).unwrap();
        dora.shutdown();
    }

    #[test]
    fn update_subscriber_data_plans_agree_on_effects() {
        let (db, workload) = small_tm1();
        let engine = DoraEngine::new(Arc::clone(&db), DoraConfig::for_tests());
        workload.bind_dora(&engine, 2).unwrap();
        // Subscriber 3 has sf_types 1..=((3+1)%4)+1 = 1..=1, so sf_type 1
        // exists (parallel plan commits) and sf_type 4 does not (any plan
        // aborts and leaves no partial update).
        let program = workload
            .update_subscriber_data_program(&db, 3, 1, 1, 42, false)
            .unwrap();
        engine.execute(program.compile_dora()).unwrap();
        let program = workload
            .update_subscriber_data_program(&db, 3, 4, 0, 99, true)
            .unwrap();
        assert!(engine.execute(program.compile_dora()).is_err());

        let tables = workload.tables(&db).unwrap();
        let check = db.begin();
        let (_, sub) = db
            .probe_primary(&check, tables.subscriber, &Key::int(3), false, CcMode::Full)
            .unwrap()
            .unwrap();
        assert_eq!(
            sub[2],
            Value::Int(1),
            "committed plan applied, aborted plan rolled back"
        );
        let (_, sf) = db
            .probe_primary(
                &check,
                tables.special_facility,
                &Key::int2(3, 1),
                false,
                CcMode::Full,
            )
            .unwrap()
            .unwrap();
        assert_eq!(sf[4], Value::Int(42));
        db.commit(&check).unwrap();
        engine.shutdown();
    }

    #[test]
    fn serial_plan_orders_the_failure_prone_step_first() {
        let (db, workload) = small_tm1();
        let parallel = workload
            .update_subscriber_data_program(&db, 3, 1, 1, 42, false)
            .unwrap()
            .compile_dora();
        assert_eq!(parallel.phase_count(), 1);
        assert_eq!(parallel.actions_in(0), 2);
        let serial = workload
            .update_subscriber_data_program(&db, 3, 1, 1, 42, true)
            .unwrap()
            .compile_dora();
        assert_eq!(serial.phase_count(), 2, "DORA-S: one action per phase");
        assert!(
            serial.describe()[0][0].starts_with("update-facility"),
            "the 62.5%-failure step must run first under DORA-S: {:?}",
            serial.describe()
        );
    }

    #[test]
    fn insert_and_delete_call_forwarding_roundtrip_via_dora() {
        let (db, workload) = small_tm1();
        let engine = DoraEngine::new(Arc::clone(&db), DoraConfig::for_tests());
        workload.bind_dora(&engine, 2).unwrap();
        let tables = workload.tables(&db).unwrap();
        // Subscriber 10 has sf_type 1; use an unusual start time to avoid
        // colliding with loaded rows.
        let program = workload
            .insert_call_forwarding_program(&db, 10, 1, 99, 120)
            .unwrap();
        engine.execute(program.compile_dora()).unwrap();
        let check = db.begin();
        assert!(db
            .probe_primary(
                &check,
                tables.call_forwarding,
                &Key::int3(10, 1, 99),
                false,
                CcMode::Full
            )
            .unwrap()
            .is_some());
        db.commit(&check).unwrap();
        // Duplicate insert aborts.
        let program = workload
            .insert_call_forwarding_program(&db, 10, 1, 99, 120)
            .unwrap();
        assert!(engine.execute(program.compile_dora()).is_err());
        // Delete removes it; a second delete aborts.
        let program = workload
            .delete_call_forwarding_program(&db, 10, 1, 99)
            .unwrap();
        engine.execute(program.compile_dora()).unwrap();
        let program = workload
            .delete_call_forwarding_program(&db, 10, 1, 99)
            .unwrap();
        assert!(engine.execute(program.compile_dora()).is_err());
        engine.shutdown();
    }

    #[test]
    fn mix_restriction_only_runs_selected_transaction() {
        let mut rng = SmallRng::seed_from_u64(3);
        let workload = Tm1::new(10).with_mix(Tm1Mix::GetSubscriberDataOnly);
        for _ in 0..50 {
            assert_eq!(workload.pick(&mut rng), Tm1Txn::GetSubscriberData);
        }
        assert_eq!(workload.txn_labels(), &[Tm1::GET_SUBSCRIBER_DATA]);
        let workload = Tm1::new(10).with_mix(Tm1Mix::UpdateSubscriberDataOnly);
        for _ in 0..50 {
            assert_eq!(workload.pick(&mut rng), Tm1Txn::UpdateSubscriberData);
        }
        assert_eq!(Tm1::new(10).txn_labels().len(), 7);
    }
}
