//! TPC-C: the order-entry benchmark.
//!
//! Five transactions over nine tables. The paper's evaluation uses Payment
//! (the running example of Figure 4 and the access-pattern trace of
//! Figure 10), OrderStatus (Figures 2b, 5, 6 and 8) and NewOrder (the
//! intra-transaction-parallelism result of Figure 7); Delivery and StockLevel
//! complete the mix.
//!
//! Every table except Item routes on the warehouse id. Item is a read-only
//! catalog table routed on the item id. The Customer secondary index on
//! (warehouse, district, last name) contains the routing field, so — as the
//! paper discusses in Section 4.1.2 — customer-by-last-name accesses are
//! still routable and need not become secondary actions.

use std::sync::OnceLock;

use rand::rngs::SmallRng;

use dora_common::prelude::*;
use dora_core::{ActionSpec, DoraEngine, FlowGraph, LocalMode};

use dora_storage::{ColumnDef, Database, IndexSpec, TableSchema, TxnHandle};

use crate::spec::{c_last, chance, nurand, uniform, ConventionalExecutor, Workload};

/// Districts per warehouse (fixed by the specification).
pub const DISTRICTS_PER_WAREHOUSE: i64 = 10;

/// Which part of the TPC-C mix to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TpccMix {
    /// The standard five-transaction mix.
    Full,
    /// Only Payment transactions (Figures 4, 9 and 10).
    PaymentOnly,
    /// Only OrderStatus transactions (Figures 2b, 5, 6, 8).
    OrderStatusOnly,
    /// Only NewOrder transactions (Figure 7).
    NewOrderOnly,
}

#[derive(Debug, Clone, Copy)]
struct TpccTables {
    warehouse: TableId,
    district: TableId,
    customer: TableId,
    history: TableId,
    new_order: TableId,
    orders: TableId,
    order_line: TableId,
    item: TableId,
    stock: TableId,
    customer_by_name: IndexId,
    orders_by_customer: IndexId,
}

/// The TPC-C workload.
#[derive(Debug)]
pub struct Tpcc {
    warehouses: i64,
    customers_per_district: i64,
    items: i64,
    mix: TpccMix,
    tables: OnceLock<TpccTables>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TpccTxn {
    NewOrder,
    Payment,
    OrderStatus,
    Delivery,
    StockLevel,
}

impl Tpcc {
    /// Label for the Payment transaction.
    pub const PAYMENT: &'static str = "tpcc-payment";
    /// Label for the OrderStatus transaction.
    pub const ORDER_STATUS: &'static str = "tpcc-order-status";
    /// Label for the NewOrder transaction.
    pub const NEW_ORDER: &'static str = "tpcc-new-order";

    /// Creates a TPC-C workload with full-size districts (3 000 customers)
    /// and a 10 000-item catalog.
    pub fn new(warehouses: i64) -> Self {
        Self::with_scale(warehouses, 3_000, 10_000)
    }

    /// Creates a TPC-C workload with reduced per-district and item scales
    /// (used by tests and quick benchmark runs; contention behaviour is
    /// governed by the warehouse count, not by these).
    pub fn with_scale(warehouses: i64, customers_per_district: i64, items: i64) -> Self {
        Self {
            warehouses: warehouses.max(1),
            customers_per_district: customers_per_district.max(1),
            items: items.max(1),
            mix: TpccMix::Full,
            tables: OnceLock::new(),
        }
    }

    /// Restricts the mix.
    pub fn with_mix(mut self, mix: TpccMix) -> Self {
        self.mix = mix;
        self
    }

    /// Number of warehouses.
    pub fn warehouses(&self) -> i64 {
        self.warehouses
    }

    fn tables(&self, db: &Database) -> DbResult<TpccTables> {
        if let Some(tables) = self.tables.get() {
            return Ok(*tables);
        }
        let tables = TpccTables {
            warehouse: db.table_id("warehouse")?,
            district: db.table_id("district")?,
            customer: db.table_id("customer")?,
            history: db.table_id("history_c")?,
            new_order: db.table_id("new_order")?,
            orders: db.table_id("orders")?,
            order_line: db.table_id("order_line")?,
            item: db.table_id("item")?,
            stock: db.table_id("stock")?,
            customer_by_name: db.index_id("customer_by_name")?,
            orders_by_customer: db.index_id("orders_by_customer")?,
        };
        let _ = self.tables.set(tables);
        Ok(tables)
    }

    fn pick(&self, rng: &mut SmallRng) -> TpccTxn {
        match self.mix {
            TpccMix::PaymentOnly => return TpccTxn::Payment,
            TpccMix::OrderStatusOnly => return TpccTxn::OrderStatus,
            TpccMix::NewOrderOnly => return TpccTxn::NewOrder,
            TpccMix::Full => {}
        }
        // Standard-ish mix: 45% NewOrder, 43% Payment, 4% each of the rest.
        match uniform(rng, 0, 99) {
            0..=44 => TpccTxn::NewOrder,
            45..=87 => TpccTxn::Payment,
            88..=91 => TpccTxn::OrderStatus,
            92..=95 => TpccTxn::Delivery,
            _ => TpccTxn::StockLevel,
        }
    }

    fn random_customer(&self, rng: &mut SmallRng) -> i64 {
        nurand(rng, 1023, 1, self.customers_per_district)
    }

    fn random_item(&self, rng: &mut SmallRng) -> i64 {
        nurand(rng, 8191, 1, self.items)
    }

    /// Resolves a customer either by id or (60% of the time, as in the
    /// Payment specification) by last name through the secondary index,
    /// returning its (rid, c_id).
    #[allow(clippy::too_many_arguments)]
    fn resolve_customer(
        &self,
        db: &Database,
        txn: &TxnHandle,
        tables: &TpccTables,
        w_id: i64,
        d_id: i64,
        by_name: Option<&str>,
        c_id: i64,
        cc: CcMode,
    ) -> DbResult<(Rid, i64)> {
        if let Some(last) = by_name {
            let hits = db.probe_secondary(
                txn,
                tables.customer_by_name,
                &Key::from_values([Value::Int(w_id), Value::Int(d_id), Value::Text(last.into())]),
                cc,
            )?;
            // The specification picks the middle customer of the sorted
            // matches; entries are already grouped under one key.
            let Some(entry) = hits.get(hits.len() / 2) else {
                return Err(DbError::TxnAborted {
                    txn: txn.id(),
                    reason: "no customer with last name".into(),
                });
            };
            let row = db.read_rid(txn, tables.customer, entry.rid, false, cc)?;
            Ok((entry.rid, row[2].as_int()?))
        } else {
            match db.probe_primary(
                txn,
                tables.customer,
                &Key::int3(w_id, d_id, c_id),
                false,
                cc,
            )? {
                Some((rid, _)) => Ok((rid, c_id)),
                None => Err(DbError::TxnAborted {
                    txn: txn.id(),
                    reason: "no such customer".into(),
                }),
            }
        }
    }

    // ----- Payment -----------------------------------------------------------

    /// Baseline body of the Payment transaction.
    #[allow(clippy::too_many_arguments)]
    pub fn payment_baseline(
        &self,
        db: &Database,
        txn: &TxnHandle,
        w_id: i64,
        d_id: i64,
        c_w_id: i64,
        c_d_id: i64,
        customer: CustomerSelector,
        amount: f64,
    ) -> DbResult<()> {
        let tables = self.tables(db)?;
        db.update_primary(
            txn,
            tables.warehouse,
            &Key::int(w_id),
            CcMode::Full,
            |row| {
                let ytd = row[2].as_float()?;
                row[2] = Value::Float(ytd + amount);
                Ok(())
            },
        )?;
        db.update_primary(
            txn,
            tables.district,
            &Key::int2(w_id, d_id),
            CcMode::Full,
            |row| {
                let ytd = row[3].as_float()?;
                row[3] = Value::Float(ytd + amount);
                Ok(())
            },
        )?;
        let (customer_rid, c_id) = match &customer {
            CustomerSelector::ById(c_id) => {
                self.resolve_customer(db, txn, &tables, c_w_id, c_d_id, None, *c_id, CcMode::Full)?
            }
            CustomerSelector::ByLastName(last) => self.resolve_customer(
                db,
                txn,
                &tables,
                c_w_id,
                c_d_id,
                Some(last),
                0,
                CcMode::Full,
            )?,
        };
        db.update_rid(txn, tables.customer, customer_rid, CcMode::Full, |row| {
            let balance = row[4].as_float()?;
            let ytd = row[5].as_float()?;
            let count = row[6].as_int()?;
            row[4] = Value::Float(balance - amount);
            row[5] = Value::Float(ytd + amount);
            row[6] = Value::Int(count + 1);
            Ok(())
        })?;
        db.insert(
            txn,
            tables.history,
            vec![
                Value::Int(w_id),
                Value::Int(d_id),
                Value::Int(c_id),
                Value::Float(amount),
                Value::Int(txn.id().0 as i64),
            ],
            CcMode::Full,
        )?;
        Ok(())
    }

    /// DORA flow graph of Payment — exactly Figure 4: phase one updates the
    /// Warehouse, District and Customer (the customer possibly on a remote
    /// warehouse's executor, which DORA handles by simply routing that action
    /// elsewhere), an RVP, then phase two inserts the History record (whose
    /// insert still takes a centralized row lock, Section 4.2.1).
    #[allow(clippy::too_many_arguments)]
    pub fn payment_graph(
        &self,
        db: &Database,
        w_id: i64,
        d_id: i64,
        c_w_id: i64,
        c_d_id: i64,
        customer: CustomerSelector,
        amount: f64,
    ) -> DbResult<FlowGraph> {
        let tables = self.tables(db)?;
        let this = self.clone_for_graph();
        let warehouse_action = ActionSpec::new(
            "payment-warehouse",
            tables.warehouse,
            Key::int(w_id),
            LocalMode::Exclusive,
            move |ctx| {
                ctx.db.update_primary(
                    ctx.txn,
                    tables.warehouse,
                    &Key::int(w_id),
                    CcMode::None,
                    |row| {
                        let ytd = row[2].as_float()?;
                        row[2] = Value::Float(ytd + amount);
                        Ok(())
                    },
                )
            },
        );
        let district_action = ActionSpec::new(
            "payment-district",
            tables.district,
            Key::int2(w_id, d_id),
            LocalMode::Exclusive,
            move |ctx| {
                ctx.db.update_primary(
                    ctx.txn,
                    tables.district,
                    &Key::int2(w_id, d_id),
                    CcMode::None,
                    |row| {
                        let ytd = row[3].as_float()?;
                        row[3] = Value::Float(ytd + amount);
                        Ok(())
                    },
                )
            },
        );
        let customer_action = ActionSpec::new(
            "payment-customer",
            tables.customer,
            Key::int2(c_w_id, c_d_id),
            LocalMode::Exclusive,
            move |ctx| {
                let (rid, c_id) = match &customer {
                    CustomerSelector::ById(c_id) => this.resolve_customer(
                        ctx.db,
                        ctx.txn,
                        &tables,
                        c_w_id,
                        c_d_id,
                        None,
                        *c_id,
                        CcMode::None,
                    )?,
                    CustomerSelector::ByLastName(last) => this.resolve_customer(
                        ctx.db,
                        ctx.txn,
                        &tables,
                        c_w_id,
                        c_d_id,
                        Some(last),
                        0,
                        CcMode::None,
                    )?,
                };
                ctx.db
                    .update_rid(ctx.txn, tables.customer, rid, CcMode::None, |row| {
                        let balance = row[4].as_float()?;
                        let ytd = row[5].as_float()?;
                        let count = row[6].as_int()?;
                        row[4] = Value::Float(balance - amount);
                        row[5] = Value::Float(ytd + amount);
                        row[6] = Value::Int(count + 1);
                        Ok(())
                    })?;
                ctx.scratch.put("c_id", c_id);
                Ok(())
            },
        );
        let history_action = ActionSpec::new(
            "payment-history",
            tables.history,
            Key::int(w_id),
            LocalMode::Exclusive,
            move |ctx| {
                let c_id = ctx.scratch.get_int("c_id")?;
                ctx.db
                    .insert(
                        ctx.txn,
                        tables.history,
                        vec![
                            Value::Int(w_id),
                            Value::Int(d_id),
                            Value::Int(c_id),
                            Value::Float(amount),
                            Value::Int(ctx.txn.id().0 as i64),
                        ],
                        CcMode::RowOnly,
                    )
                    .map(|_| ())
            },
        );
        Ok(FlowGraph::new()
            .phase_with(vec![warehouse_action, district_action, customer_action])
            .phase_with(vec![history_action]))
    }

    // ----- OrderStatus -------------------------------------------------------

    /// Baseline body of OrderStatus.
    pub fn order_status_baseline(
        &self,
        db: &Database,
        txn: &TxnHandle,
        w_id: i64,
        d_id: i64,
        customer: CustomerSelector,
    ) -> DbResult<()> {
        let tables = self.tables(db)?;
        let (_, c_id) = match &customer {
            CustomerSelector::ById(c_id) => {
                self.resolve_customer(db, txn, &tables, w_id, d_id, None, *c_id, CcMode::Full)?
            }
            CustomerSelector::ByLastName(last) => {
                self.resolve_customer(db, txn, &tables, w_id, d_id, Some(last), 0, CcMode::Full)?
            }
        };
        let orders = db.probe_secondary(
            txn,
            tables.orders_by_customer,
            &Key::int3(w_id, d_id, c_id),
            CcMode::Full,
        )?;
        let Some(latest) = orders.iter().map(|e| e.rid).max_by_key(|rid| rid.pack()) else {
            return Err(DbError::TxnAborted {
                txn: txn.id(),
                reason: "customer has no orders".into(),
            });
        };
        let order = db.read_rid(txn, tables.orders, latest, false, CcMode::Full)?;
        let o_id = order[2].as_int()?;
        let lines = db.probe_secondary(
            txn,
            tables.orders_by_customer,
            &Key::int3(w_id, d_id, c_id),
            CcMode::Full,
        )?;
        let _ = lines;
        // Read every order line of the latest order.
        let mut line_number = 1;
        while db
            .probe_primary(
                txn,
                tables.order_line,
                &Key::from_values([w_id, d_id, o_id, line_number]),
                false,
                CcMode::Full,
            )?
            .is_some()
        {
            line_number += 1;
        }
        Ok(())
    }

    /// DORA flow graph of OrderStatus: read the customer, then (after the
    /// RVP) the latest order, then its order lines — three phases, all of
    /// whose actions are routable because every identifier starts with the
    /// warehouse id.
    pub fn order_status_graph(
        &self,
        db: &Database,
        w_id: i64,
        d_id: i64,
        customer: CustomerSelector,
    ) -> DbResult<FlowGraph> {
        let tables = self.tables(db)?;
        let this = self.clone_for_graph();
        let customer_action = ActionSpec::new(
            "orderstatus-customer",
            tables.customer,
            Key::int2(w_id, d_id),
            LocalMode::Shared,
            move |ctx| {
                let (_, c_id) = match &customer {
                    CustomerSelector::ById(c_id) => this.resolve_customer(
                        ctx.db,
                        ctx.txn,
                        &tables,
                        w_id,
                        d_id,
                        None,
                        *c_id,
                        CcMode::None,
                    )?,
                    CustomerSelector::ByLastName(last) => this.resolve_customer(
                        ctx.db,
                        ctx.txn,
                        &tables,
                        w_id,
                        d_id,
                        Some(last),
                        0,
                        CcMode::None,
                    )?,
                };
                ctx.scratch.put("c_id", c_id);
                Ok(())
            },
        );
        let order_action = ActionSpec::new(
            "orderstatus-order",
            tables.orders,
            Key::int2(w_id, d_id),
            LocalMode::Shared,
            move |ctx| {
                let c_id = ctx.scratch.get_int("c_id")?;
                let orders = ctx.db.probe_secondary(
                    ctx.txn,
                    tables.orders_by_customer,
                    &Key::int3(w_id, d_id, c_id),
                    CcMode::None,
                )?;
                let Some(latest) = orders.iter().map(|e| e.rid).max_by_key(|rid| rid.pack()) else {
                    return Err(DbError::TxnAborted {
                        txn: ctx.txn.id(),
                        reason: "customer has no orders".into(),
                    });
                };
                let order = ctx
                    .db
                    .read_rid(ctx.txn, tables.orders, latest, false, CcMode::None)?;
                ctx.scratch.put("o_id", order[2].as_int()?);
                Ok(())
            },
        );
        let lines_action = ActionSpec::new(
            "orderstatus-orderlines",
            tables.order_line,
            Key::int2(w_id, d_id),
            LocalMode::Shared,
            move |ctx| {
                let o_id = ctx.scratch.get_int("o_id")?;
                let mut line_number = 1;
                while ctx
                    .db
                    .probe_primary(
                        ctx.txn,
                        tables.order_line,
                        &Key::from_values([w_id, d_id, o_id, line_number]),
                        false,
                        CcMode::None,
                    )?
                    .is_some()
                {
                    line_number += 1;
                }
                Ok(())
            },
        );
        Ok(FlowGraph::new()
            .phase_with(vec![customer_action])
            .phase_with(vec![order_action])
            .phase_with(vec![lines_action]))
    }

    // ----- NewOrder ----------------------------------------------------------

    /// Baseline body of NewOrder. `items` is the order's item list
    /// (item id, quantity); an invalid item id aborts the whole transaction
    /// (as ~1% of generated NewOrders do, per the specification).
    pub fn new_order_baseline(
        &self,
        db: &Database,
        txn: &TxnHandle,
        w_id: i64,
        d_id: i64,
        c_id: i64,
        items: &[(i64, i64)],
    ) -> DbResult<()> {
        let tables = self.tables(db)?;
        if db
            .probe_primary(
                txn,
                tables.customer,
                &Key::int3(w_id, d_id, c_id),
                false,
                CcMode::Full,
            )?
            .is_none()
        {
            return Err(DbError::TxnAborted {
                txn: txn.id(),
                reason: "no such customer".into(),
            });
        }
        // Validate the items up front; an unknown item aborts.
        let mut prices = Vec::with_capacity(items.len());
        for (item_id, _) in items {
            match db.probe_primary(txn, tables.item, &Key::int(*item_id), false, CcMode::Full)? {
                Some((_, row)) => prices.push(row[2].as_float()?),
                None => {
                    return Err(DbError::TxnAborted {
                        txn: txn.id(),
                        reason: "unused item id".into(),
                    })
                }
            }
        }
        let mut o_id = 0;
        db.update_primary(
            txn,
            tables.district,
            &Key::int2(w_id, d_id),
            CcMode::Full,
            |row| {
                o_id = row[4].as_int()?;
                row[4] = Value::Int(o_id + 1);
                Ok(())
            },
        )?;
        db.insert(
            txn,
            tables.orders,
            vec![
                Value::Int(w_id),
                Value::Int(d_id),
                Value::Int(o_id),
                Value::Int(c_id),
                Value::Int(0),
                Value::Int(items.len() as i64),
            ],
            CcMode::Full,
        )?;
        db.insert(
            txn,
            tables.new_order,
            vec![Value::Int(w_id), Value::Int(d_id), Value::Int(o_id)],
            CcMode::Full,
        )?;
        for (number, ((item_id, quantity), price)) in items.iter().zip(prices.iter()).enumerate() {
            db.update_primary(
                txn,
                tables.stock,
                &Key::int2(w_id, *item_id),
                CcMode::Full,
                |row| {
                    let quantity_now = row[2].as_int()?;
                    let new_quantity = if quantity_now >= quantity + 10 {
                        quantity_now - quantity
                    } else {
                        quantity_now + 91 - quantity
                    };
                    row[2] = Value::Int(new_quantity);
                    row[3] = Value::Int(row[3].as_int()? + quantity);
                    row[4] = Value::Int(row[4].as_int()? + 1);
                    Ok(())
                },
            )?;
            db.insert(
                txn,
                tables.order_line,
                vec![
                    Value::Int(w_id),
                    Value::Int(d_id),
                    Value::Int(o_id),
                    Value::Int(number as i64 + 1),
                    Value::Int(*item_id),
                    Value::Int(*quantity),
                    Value::Float(price * *quantity as f64),
                ],
                CcMode::Full,
            )?;
        }
        Ok(())
    }

    /// DORA flow graph of NewOrder: phase one reads the customer and items
    /// (item actions route on the item id) and advances the district's order
    /// counter; phase two inserts the order, the new-order entry and the
    /// order lines and updates the stock. The inserts take centralized row
    /// locks (`CcMode::RowOnly`).
    pub fn new_order_graph(
        &self,
        db: &Database,
        w_id: i64,
        d_id: i64,
        c_id: i64,
        items: Vec<(i64, i64)>,
    ) -> DbResult<FlowGraph> {
        let tables = self.tables(db)?;
        let customer_action = ActionSpec::new(
            "neworder-customer",
            tables.customer,
            Key::int2(w_id, d_id),
            LocalMode::Shared,
            move |ctx| {
                if ctx
                    .db
                    .probe_primary(
                        ctx.txn,
                        tables.customer,
                        &Key::int3(w_id, d_id, c_id),
                        false,
                        CcMode::None,
                    )?
                    .is_none()
                {
                    return Err(DbError::TxnAborted {
                        txn: ctx.txn.id(),
                        reason: "no such customer".into(),
                    });
                }
                Ok(())
            },
        );
        let district_action = ActionSpec::new(
            "neworder-district",
            tables.district,
            Key::int2(w_id, d_id),
            LocalMode::Exclusive,
            move |ctx| {
                let mut o_id = 0;
                ctx.db.update_primary(
                    ctx.txn,
                    tables.district,
                    &Key::int2(w_id, d_id),
                    CcMode::None,
                    |row| {
                        o_id = row[4].as_int()?;
                        row[4] = Value::Int(o_id + 1);
                        Ok(())
                    },
                )?;
                ctx.scratch.put("o_id", o_id);
                Ok(())
            },
        );
        let mut phase_one = vec![customer_action, district_action];
        // One read-only action per distinct item, routed on the item id.
        for (index, (item_id, _)) in items.iter().enumerate() {
            let item_id = *item_id;
            let slot = format!("price_{index}");
            phase_one.push(ActionSpec::new(
                "neworder-item",
                tables.item,
                Key::int(item_id),
                LocalMode::Shared,
                move |ctx| match ctx.db.probe_primary(
                    ctx.txn,
                    tables.item,
                    &Key::int(item_id),
                    false,
                    CcMode::None,
                )? {
                    Some((_, row)) => {
                        ctx.scratch.put(&slot, row[2].as_float()?);
                        Ok(())
                    }
                    None => Err(DbError::TxnAborted {
                        txn: ctx.txn.id(),
                        reason: "unused item id".into(),
                    }),
                },
            ));
        }

        // Phase two: all the inserts plus the stock updates, grouped per
        // table into merged actions keyed by the warehouse.
        let items_for_stock = items.clone();
        let stock_action = ActionSpec::new(
            "neworder-stock",
            tables.stock,
            Key::int(w_id),
            LocalMode::Exclusive,
            move |ctx| {
                for (item_id, quantity) in &items_for_stock {
                    ctx.db.update_primary(
                        ctx.txn,
                        tables.stock,
                        &Key::int2(w_id, *item_id),
                        CcMode::None,
                        |row| {
                            let quantity_now = row[2].as_int()?;
                            let new_quantity = if quantity_now >= quantity + 10 {
                                quantity_now - quantity
                            } else {
                                quantity_now + 91 - quantity
                            };
                            row[2] = Value::Int(new_quantity);
                            row[3] = Value::Int(row[3].as_int()? + quantity);
                            row[4] = Value::Int(row[4].as_int()? + 1);
                            Ok(())
                        },
                    )?;
                }
                Ok(())
            },
        );
        let item_count = items.len();
        let orders_action = ActionSpec::new(
            "neworder-orders",
            tables.orders,
            Key::int(w_id),
            LocalMode::Exclusive,
            move |ctx| {
                let o_id = ctx.scratch.get_int("o_id")?;
                ctx.db
                    .insert(
                        ctx.txn,
                        tables.orders,
                        vec![
                            Value::Int(w_id),
                            Value::Int(d_id),
                            Value::Int(o_id),
                            Value::Int(c_id),
                            Value::Int(0),
                            Value::Int(item_count as i64),
                        ],
                        CcMode::RowOnly,
                    )
                    .map(|_| ())
            },
        );
        let new_order_action = ActionSpec::new(
            "neworder-newordertab",
            tables.new_order,
            Key::int(w_id),
            LocalMode::Exclusive,
            move |ctx| {
                let o_id = ctx.scratch.get_int("o_id")?;
                ctx.db
                    .insert(
                        ctx.txn,
                        tables.new_order,
                        vec![Value::Int(w_id), Value::Int(d_id), Value::Int(o_id)],
                        CcMode::RowOnly,
                    )
                    .map(|_| ())
            },
        );
        let items_for_lines = items.clone();
        let order_line_action = ActionSpec::new(
            "neworder-orderlines",
            tables.order_line,
            Key::int(w_id),
            LocalMode::Exclusive,
            move |ctx| {
                let o_id = ctx.scratch.get_int("o_id")?;
                for (number, (item_id, quantity)) in items_for_lines.iter().enumerate() {
                    let price = ctx.scratch.get_float(&format!("price_{number}"))?;
                    ctx.db.insert(
                        ctx.txn,
                        tables.order_line,
                        vec![
                            Value::Int(w_id),
                            Value::Int(d_id),
                            Value::Int(o_id),
                            Value::Int(number as i64 + 1),
                            Value::Int(*item_id),
                            Value::Int(*quantity),
                            Value::Float(price * *quantity as f64),
                        ],
                        CcMode::RowOnly,
                    )?;
                }
                Ok(())
            },
        );
        Ok(FlowGraph::new().phase_with(phase_one).phase_with(vec![
            stock_action,
            orders_action,
            new_order_action,
            order_line_action,
        ]))
    }

    // ----- Delivery ----------------------------------------------------------

    /// Baseline body of Delivery: for every district of the warehouse,
    /// deliver the oldest undelivered order.
    pub fn delivery_baseline(
        &self,
        db: &Database,
        txn: &TxnHandle,
        w_id: i64,
        carrier: i64,
    ) -> DbResult<()> {
        let tables = self.tables(db)?;
        for d_id in 1..=DISTRICTS_PER_WAREHOUSE {
            // Oldest new-order entry for the district.
            let mut oldest: Option<i64> = None;
            db.scan_table(txn, tables.new_order, CcMode::Full, |_, row| {
                if row[0] == Value::Int(w_id) && row[1] == Value::Int(d_id) {
                    let o_id = row[2].as_int().unwrap_or(i64::MAX);
                    oldest = Some(oldest.map_or(o_id, |current: i64| current.min(o_id)));
                }
            })?;
            let Some(o_id) = oldest else { continue };
            db.delete_primary(
                txn,
                tables.new_order,
                &Key::int3(w_id, d_id, o_id),
                CcMode::Full,
            )?;
            let mut c_id = 0;
            db.update_primary(
                txn,
                tables.orders,
                &Key::int3(w_id, d_id, o_id),
                CcMode::Full,
                |row| {
                    c_id = row[3].as_int()?;
                    row[4] = Value::Int(carrier);
                    Ok(())
                },
            )?;
            // Sum the order's lines.
            let mut amount = 0.0;
            let mut line_number = 1;
            while let Some((_, row)) = db.probe_primary(
                txn,
                tables.order_line,
                &Key::from_values([w_id, d_id, o_id, line_number]),
                false,
                CcMode::Full,
            )? {
                amount += row[6].as_float()?;
                line_number += 1;
            }
            db.update_primary(
                txn,
                tables.customer,
                &Key::int3(w_id, d_id, c_id),
                CcMode::Full,
                |row| {
                    row[4] = Value::Float(row[4].as_float()? + amount);
                    row[7] = Value::Int(row[7].as_int()? + 1);
                    Ok(())
                },
            )?;
        }
        Ok(())
    }

    /// DORA flow graph of Delivery. All actions are keyed by the warehouse,
    /// so the per-district loops are merged into one action per table
    /// (consecutive actions with the same identifier can be merged,
    /// Section 4.1.2).
    pub fn delivery_graph(&self, db: &Database, w_id: i64, carrier: i64) -> DbResult<FlowGraph> {
        let tables = self.tables(db)?;
        let new_order_action = ActionSpec::new(
            "delivery-neworder",
            tables.new_order,
            Key::int(w_id),
            LocalMode::Exclusive,
            move |ctx| {
                for d_id in 1..=DISTRICTS_PER_WAREHOUSE {
                    let mut oldest: Option<i64> = None;
                    ctx.db
                        .scan_table(ctx.txn, tables.new_order, CcMode::None, |_, row| {
                            if row[0] == Value::Int(w_id) && row[1] == Value::Int(d_id) {
                                let o_id = row[2].as_int().unwrap_or(i64::MAX);
                                oldest =
                                    Some(oldest.map_or(o_id, |current: i64| current.min(o_id)));
                            }
                        })?;
                    if let Some(o_id) = oldest {
                        ctx.db.delete_primary(
                            ctx.txn,
                            tables.new_order,
                            &Key::int3(w_id, d_id, o_id),
                            CcMode::RowOnly,
                        )?;
                        ctx.scratch.put(&format!("deliver_{d_id}"), o_id);
                    }
                }
                Ok(())
            },
        );
        let orders_action = ActionSpec::new(
            "delivery-orders",
            tables.orders,
            Key::int(w_id),
            LocalMode::Exclusive,
            move |ctx| {
                for d_id in 1..=DISTRICTS_PER_WAREHOUSE {
                    let Some(o_id) = ctx.scratch.get(&format!("deliver_{d_id}")) else {
                        continue;
                    };
                    let o_id = o_id.as_int()?;
                    let mut c_id = 0;
                    ctx.db.update_primary(
                        ctx.txn,
                        tables.orders,
                        &Key::int3(w_id, d_id, o_id),
                        CcMode::None,
                        |row| {
                            c_id = row[3].as_int()?;
                            row[4] = Value::Int(carrier);
                            Ok(())
                        },
                    )?;
                    ctx.scratch.put(&format!("customer_{d_id}"), c_id);
                    // Sum the order lines while we are here (same warehouse
                    // executor owns them under the same routing field, but
                    // they belong to another table; keep the sum here simple
                    // by reading through the order_line primary key).
                    let mut amount = 0.0;
                    let mut line_number = 1;
                    while let Some((_, row)) = ctx.db.probe_primary(
                        ctx.txn,
                        tables.order_line,
                        &Key::from_values([w_id, d_id, o_id, line_number]),
                        false,
                        CcMode::None,
                    )? {
                        amount += row[6].as_float()?;
                        line_number += 1;
                    }
                    ctx.scratch.put(&format!("amount_{d_id}"), amount);
                }
                Ok(())
            },
        );
        let customer_action = ActionSpec::new(
            "delivery-customer",
            tables.customer,
            Key::int(w_id),
            LocalMode::Exclusive,
            move |ctx| {
                for d_id in 1..=DISTRICTS_PER_WAREHOUSE {
                    let Some(c_id) = ctx.scratch.get(&format!("customer_{d_id}")) else {
                        continue;
                    };
                    let c_id = c_id.as_int()?;
                    let amount = ctx
                        .scratch
                        .get_float(&format!("amount_{d_id}"))
                        .unwrap_or(0.0);
                    ctx.db.update_primary(
                        ctx.txn,
                        tables.customer,
                        &Key::int3(w_id, d_id, c_id),
                        CcMode::None,
                        |row| {
                            row[4] = Value::Float(row[4].as_float()? + amount);
                            row[7] = Value::Int(row[7].as_int()? + 1);
                            Ok(())
                        },
                    )?;
                }
                Ok(())
            },
        );
        Ok(FlowGraph::new()
            .phase_with(vec![new_order_action])
            .phase_with(vec![orders_action])
            .phase_with(vec![customer_action]))
    }

    // ----- StockLevel --------------------------------------------------------

    /// Baseline body of StockLevel: count stock entries below `threshold`
    /// among the items of the district's 20 most recent orders.
    pub fn stock_level_baseline(
        &self,
        db: &Database,
        txn: &TxnHandle,
        w_id: i64,
        d_id: i64,
        threshold: i64,
    ) -> DbResult<()> {
        let tables = self.tables(db)?;
        let Some((_, district)) = db.probe_primary(
            txn,
            tables.district,
            &Key::int2(w_id, d_id),
            false,
            CcMode::Full,
        )?
        else {
            return Err(DbError::TxnAborted {
                txn: txn.id(),
                reason: "no such district".into(),
            });
        };
        let next_o_id = district[4].as_int()?;
        let mut item_ids = Vec::new();
        for o_id in (next_o_id - 20).max(0)..next_o_id {
            let mut line_number = 1;
            while let Some((_, row)) = db.probe_primary(
                txn,
                tables.order_line,
                &Key::from_values([w_id, d_id, o_id, line_number]),
                false,
                CcMode::Full,
            )? {
                item_ids.push(row[4].as_int()?);
                line_number += 1;
            }
        }
        item_ids.sort_unstable();
        item_ids.dedup();
        let mut low = 0;
        for item_id in item_ids {
            if let Some((_, stock)) = db.probe_primary(
                txn,
                tables.stock,
                &Key::int2(w_id, item_id),
                false,
                CcMode::Full,
            )? {
                if stock[2].as_int()? < threshold {
                    low += 1;
                }
            }
        }
        let _ = low;
        Ok(())
    }

    /// DORA flow graph of StockLevel: district read, then order-line
    /// collection, then the stock count — three phases chained by data
    /// dependencies, all keyed by the warehouse id.
    pub fn stock_level_graph(
        &self,
        db: &Database,
        w_id: i64,
        d_id: i64,
        threshold: i64,
    ) -> DbResult<FlowGraph> {
        let tables = self.tables(db)?;
        let district_action = ActionSpec::new(
            "stocklevel-district",
            tables.district,
            Key::int2(w_id, d_id),
            LocalMode::Shared,
            move |ctx| {
                let Some((_, district)) = ctx.db.probe_primary(
                    ctx.txn,
                    tables.district,
                    &Key::int2(w_id, d_id),
                    false,
                    CcMode::None,
                )?
                else {
                    return Err(DbError::TxnAborted {
                        txn: ctx.txn.id(),
                        reason: "no such district".into(),
                    });
                };
                ctx.scratch.put("next_o_id", district[4].as_int()?);
                Ok(())
            },
        );
        let lines_action = ActionSpec::new(
            "stocklevel-orderlines",
            tables.order_line,
            Key::int2(w_id, d_id),
            LocalMode::Shared,
            move |ctx| {
                let next_o_id = ctx.scratch.get_int("next_o_id")?;
                let mut item_ids = Vec::new();
                for o_id in (next_o_id - 20).max(0)..next_o_id {
                    let mut line_number = 1;
                    while let Some((_, row)) = ctx.db.probe_primary(
                        ctx.txn,
                        tables.order_line,
                        &Key::from_values([w_id, d_id, o_id, line_number]),
                        false,
                        CcMode::None,
                    )? {
                        item_ids.push(row[4].as_int()?);
                        line_number += 1;
                    }
                }
                item_ids.sort_unstable();
                item_ids.dedup();
                ctx.scratch.put("distinct_items", item_ids.len() as i64);
                for (index, item_id) in item_ids.iter().enumerate() {
                    ctx.scratch.put(&format!("item_{index}"), *item_id);
                }
                Ok(())
            },
        );
        let stock_action = ActionSpec::new(
            "stocklevel-stock",
            tables.stock,
            Key::int(w_id),
            LocalMode::Shared,
            move |ctx| {
                let count = ctx.scratch.get_int("distinct_items")?;
                let mut low = 0;
                for index in 0..count {
                    let item_id = ctx.scratch.get_int(&format!("item_{index}"))?;
                    if let Some((_, stock)) = ctx.db.probe_primary(
                        ctx.txn,
                        tables.stock,
                        &Key::int2(w_id, item_id),
                        false,
                        CcMode::None,
                    )? {
                        if stock[2].as_int()? < threshold {
                            low += 1;
                        }
                    }
                }
                let _ = low;
                Ok(())
            },
        );
        Ok(FlowGraph::new()
            .phase_with(vec![district_action])
            .phase_with(vec![lines_action])
            .phase_with(vec![stock_action]))
    }

    // ----- input generation ---------------------------------------------------

    /// Generates Payment inputs: (w_id, d_id, c_w_id, c_d_id, selector, amount).
    pub fn payment_inputs(
        &self,
        rng: &mut SmallRng,
    ) -> (i64, i64, i64, i64, CustomerSelector, f64) {
        let w_id = uniform(rng, 1, self.warehouses);
        let d_id = uniform(rng, 1, DISTRICTS_PER_WAREHOUSE);
        // 15% of payments are for a customer of a remote warehouse.
        let (c_w_id, c_d_id) = if self.warehouses > 1 && chance(rng, 15) {
            let mut other = uniform(rng, 1, self.warehouses - 1);
            if other >= w_id {
                other += 1;
            }
            (other, uniform(rng, 1, DISTRICTS_PER_WAREHOUSE))
        } else {
            (w_id, d_id)
        };
        // 60% of the time the customer is selected by last name.
        let selector = if chance(rng, 60) {
            CustomerSelector::ByLastName(self.random_loaded_last_name(rng))
        } else {
            CustomerSelector::ById(self.random_customer(rng))
        };
        let amount = uniform(rng, 100, 500_000) as f64 / 100.0;
        (w_id, d_id, c_w_id, c_d_id, selector, amount)
    }

    /// A last name that is guaranteed to exist in the loaded data (the loader
    /// assigns `c_last(c_id % 1000)`).
    fn random_loaded_last_name(&self, rng: &mut SmallRng) -> String {
        let c_id = uniform(rng, 1, self.customers_per_district);
        c_last(c_id % 1000)
    }

    /// Generates NewOrder inputs: (w_id, d_id, c_id, items). Roughly 1% of
    /// the generated orders contain an invalid item id and must abort.
    pub fn new_order_inputs(&self, rng: &mut SmallRng) -> (i64, i64, i64, Vec<(i64, i64)>) {
        let w_id = uniform(rng, 1, self.warehouses);
        let d_id = uniform(rng, 1, DISTRICTS_PER_WAREHOUSE);
        let c_id = self.random_customer(rng);
        let count = uniform(rng, 5, 15);
        let mut items = Vec::with_capacity(count as usize);
        for _ in 0..count {
            items.push((self.random_item(rng), uniform(rng, 1, 10)));
        }
        if chance(rng, 1) {
            // Invalid item id, forcing a rollback as the specification does.
            items.last_mut().expect("at least 5 items").0 = self.items + 1_000_000;
        }
        (w_id, d_id, c_id, items)
    }
}

/// How Payment / OrderStatus select their customer.
#[derive(Debug, Clone)]
pub enum CustomerSelector {
    /// By primary key.
    ById(i64),
    /// By last name through the `customer_by_name` secondary index.
    ByLastName(String),
}

impl Tpcc {
    /// A lightweight clone used inside action closures (the closures may not
    /// borrow `self`, and `Tpcc` owns only plain configuration).
    fn clone_for_graph(&self) -> Tpcc {
        Tpcc {
            warehouses: self.warehouses,
            customers_per_district: self.customers_per_district,
            items: self.items,
            mix: self.mix,
            tables: self.tables.clone(),
        }
    }
}

impl Workload for Tpcc {
    fn name(&self) -> &'static str {
        match self.mix {
            TpccMix::Full => "TPC-C",
            TpccMix::PaymentOnly => "TPC-C Payment",
            TpccMix::OrderStatusOnly => "TPC-C OrderStatus",
            TpccMix::NewOrderOnly => "TPC-C NewOrder",
        }
    }

    fn create_schema(&self, db: &Database) -> DbResult<()> {
        db.create_table(TableSchema::new(
            "warehouse",
            vec![
                ColumnDef::new("w_id", ValueType::Int),
                ColumnDef::new("w_name", ValueType::Text),
                ColumnDef::new("w_ytd", ValueType::Float),
            ],
            vec![0],
        ))?;
        db.create_table(TableSchema::new(
            "district",
            vec![
                ColumnDef::new("d_w_id", ValueType::Int),
                ColumnDef::new("d_id", ValueType::Int),
                ColumnDef::new("d_name", ValueType::Text),
                ColumnDef::new("d_ytd", ValueType::Float),
                ColumnDef::new("d_next_o_id", ValueType::Int),
            ],
            vec![0, 1],
        ))?;
        db.create_table(TableSchema::new(
            "customer",
            vec![
                ColumnDef::new("c_w_id", ValueType::Int),
                ColumnDef::new("c_d_id", ValueType::Int),
                ColumnDef::new("c_id", ValueType::Int),
                ColumnDef::new("c_last", ValueType::Text),
                ColumnDef::new("c_balance", ValueType::Float),
                ColumnDef::new("c_ytd_payment", ValueType::Float),
                ColumnDef::new("c_payment_cnt", ValueType::Int),
                ColumnDef::new("c_delivery_cnt", ValueType::Int),
            ],
            vec![0, 1, 2],
        ))?;
        db.create_table(TableSchema::new(
            "history_c",
            vec![
                ColumnDef::new("h_w_id", ValueType::Int),
                ColumnDef::new("h_d_id", ValueType::Int),
                ColumnDef::new("h_c_id", ValueType::Int),
                ColumnDef::new("h_amount", ValueType::Float),
                ColumnDef::new("h_tid", ValueType::Int),
            ],
            vec![0, 4],
        ))?;
        db.create_table(TableSchema::new(
            "new_order",
            vec![
                ColumnDef::new("no_w_id", ValueType::Int),
                ColumnDef::new("no_d_id", ValueType::Int),
                ColumnDef::new("no_o_id", ValueType::Int),
            ],
            vec![0, 1, 2],
        ))?;
        db.create_table(TableSchema::new(
            "orders",
            vec![
                ColumnDef::new("o_w_id", ValueType::Int),
                ColumnDef::new("o_d_id", ValueType::Int),
                ColumnDef::new("o_id", ValueType::Int),
                ColumnDef::new("o_c_id", ValueType::Int),
                ColumnDef::new("o_carrier_id", ValueType::Int),
                ColumnDef::new("o_ol_cnt", ValueType::Int),
            ],
            vec![0, 1, 2],
        ))?;
        db.create_table(TableSchema::new(
            "order_line",
            vec![
                ColumnDef::new("ol_w_id", ValueType::Int),
                ColumnDef::new("ol_d_id", ValueType::Int),
                ColumnDef::new("ol_o_id", ValueType::Int),
                ColumnDef::new("ol_number", ValueType::Int),
                ColumnDef::new("ol_i_id", ValueType::Int),
                ColumnDef::new("ol_quantity", ValueType::Int),
                ColumnDef::new("ol_amount", ValueType::Float),
            ],
            vec![0, 1, 2, 3],
        ))?;
        db.create_table(TableSchema::new(
            "item",
            vec![
                ColumnDef::new("i_id", ValueType::Int),
                ColumnDef::new("i_name", ValueType::Text),
                ColumnDef::new("i_price", ValueType::Float),
            ],
            vec![0],
        ))?;
        db.create_table(TableSchema::new(
            "stock",
            vec![
                ColumnDef::new("s_w_id", ValueType::Int),
                ColumnDef::new("s_i_id", ValueType::Int),
                ColumnDef::new("s_quantity", ValueType::Int),
                ColumnDef::new("s_ytd", ValueType::Int),
                ColumnDef::new("s_order_cnt", ValueType::Int),
            ],
            vec![0, 1],
        ))?;
        let customer = db.table_id("customer")?;
        db.create_index(IndexSpec {
            name: "customer_by_name".into(),
            table: customer,
            key_columns: vec![0, 1, 3],
            unique: false,
        })?;
        let orders = db.table_id("orders")?;
        db.create_index(IndexSpec {
            name: "orders_by_customer".into(),
            table: orders,
            key_columns: vec![0, 1, 3],
            unique: false,
        })?;
        Ok(())
    }

    fn load(&self, db: &Database) -> DbResult<()> {
        let tables = self.tables(db)?;
        for item in 1..=self.items {
            db.load_row(
                tables.item,
                vec![
                    Value::Int(item),
                    Value::Text(format!("item-{item}")),
                    Value::Float(1.0 + (item % 100) as f64),
                ],
            )?;
        }
        for w_id in 1..=self.warehouses {
            db.load_row(
                tables.warehouse,
                vec![
                    Value::Int(w_id),
                    Value::Text(format!("warehouse-{w_id}")),
                    Value::Float(0.0),
                ],
            )?;
            for item in 1..=self.items {
                db.load_row(
                    tables.stock,
                    vec![
                        Value::Int(w_id),
                        Value::Int(item),
                        Value::Int(50 + ((w_id + item) % 50)),
                        Value::Int(0),
                        Value::Int(0),
                    ],
                )?;
            }
            for d_id in 1..=DISTRICTS_PER_WAREHOUSE {
                // Each district starts with one historical order per customer
                // (o_id == c_id), so OrderStatus always has an order to find;
                // the next order id continues from there.
                db.load_row(
                    tables.district,
                    vec![
                        Value::Int(w_id),
                        Value::Int(d_id),
                        Value::Text(format!("district-{w_id}-{d_id}")),
                        Value::Float(0.0),
                        Value::Int(self.customers_per_district + 1),
                    ],
                )?;
                for c_id in 1..=self.customers_per_district {
                    db.load_row(
                        tables.customer,
                        vec![
                            Value::Int(w_id),
                            Value::Int(d_id),
                            Value::Int(c_id),
                            Value::Text(c_last(c_id % 1000)),
                            Value::Float(-10.0),
                            Value::Float(10.0),
                            Value::Int(1),
                            Value::Int(0),
                        ],
                    )?;
                    let o_id = c_id;
                    let line_count = 3;
                    db.load_row(
                        tables.orders,
                        vec![
                            Value::Int(w_id),
                            Value::Int(d_id),
                            Value::Int(o_id),
                            Value::Int(c_id),
                            Value::Int(1 + (o_id % 10)),
                            Value::Int(line_count),
                        ],
                    )?;
                    for number in 1..=line_count {
                        let item = 1 + ((o_id * 7 + number) % self.items);
                        db.load_row(
                            tables.order_line,
                            vec![
                                Value::Int(w_id),
                                Value::Int(d_id),
                                Value::Int(o_id),
                                Value::Int(number),
                                Value::Int(item),
                                Value::Int(1 + (number % 5)),
                                Value::Float(10.0 + number as f64),
                            ],
                        )?;
                    }
                }
            }
        }
        Ok(())
    }

    fn bind_dora(&self, engine: &DoraEngine, executors_per_table: usize) -> DbResult<()> {
        let tables = self.tables(engine.db())?;
        for table in [
            tables.warehouse,
            tables.district,
            tables.customer,
            tables.history,
            tables.new_order,
            tables.orders,
            tables.order_line,
            tables.stock,
        ] {
            engine.bind_table(table, executors_per_table, 1, self.warehouses)?;
        }
        // Item routes on the item id.
        engine.bind_table(tables.item, executors_per_table, 1, self.items)?;
        Ok(())
    }

    fn run_baseline(&self, engine: &dyn ConventionalExecutor, rng: &mut SmallRng) -> TxnOutcome {
        let result = match self.pick(rng) {
            TpccTxn::Payment => {
                let (w_id, d_id, c_w_id, c_d_id, selector, amount) = self.payment_inputs(rng);
                engine.execute_txn(&|db, txn| {
                    self.payment_baseline(
                        db,
                        txn,
                        w_id,
                        d_id,
                        c_w_id,
                        c_d_id,
                        selector.clone(),
                        amount,
                    )
                })
            }
            TpccTxn::OrderStatus => {
                let w_id = uniform(rng, 1, self.warehouses);
                let d_id = uniform(rng, 1, DISTRICTS_PER_WAREHOUSE);
                let selector = if chance(rng, 60) {
                    CustomerSelector::ByLastName(self.random_loaded_last_name(rng))
                } else {
                    CustomerSelector::ById(self.random_customer(rng))
                };
                engine.execute_txn(&|db, txn| {
                    self.order_status_baseline(db, txn, w_id, d_id, selector.clone())
                })
            }
            TpccTxn::NewOrder => {
                let (w_id, d_id, c_id, items) = self.new_order_inputs(rng);
                engine.execute_txn(&|db, txn| {
                    self.new_order_baseline(db, txn, w_id, d_id, c_id, &items)
                })
            }
            TpccTxn::Delivery => {
                let w_id = uniform(rng, 1, self.warehouses);
                let carrier = uniform(rng, 1, 10);
                engine.execute_txn(&|db, txn| self.delivery_baseline(db, txn, w_id, carrier))
            }
            TpccTxn::StockLevel => {
                let w_id = uniform(rng, 1, self.warehouses);
                let d_id = uniform(rng, 1, DISTRICTS_PER_WAREHOUSE);
                let threshold = uniform(rng, 10, 20);
                engine.execute_txn(&|db, txn| {
                    self.stock_level_baseline(db, txn, w_id, d_id, threshold)
                })
            }
        };
        match result {
            Ok(BaselineOutcome::Committed) => TxnOutcome::Committed,
            _ => TxnOutcome::Aborted,
        }
    }

    fn run_dora(&self, engine: &DoraEngine, rng: &mut SmallRng) -> TxnOutcome {
        let db = engine.db();
        let graph = match self.pick(rng) {
            TpccTxn::Payment => {
                let (w_id, d_id, c_w_id, c_d_id, selector, amount) = self.payment_inputs(rng);
                self.payment_graph(db, w_id, d_id, c_w_id, c_d_id, selector, amount)
            }
            TpccTxn::OrderStatus => {
                let w_id = uniform(rng, 1, self.warehouses);
                let d_id = uniform(rng, 1, DISTRICTS_PER_WAREHOUSE);
                let selector = if chance(rng, 60) {
                    CustomerSelector::ByLastName(self.random_loaded_last_name(rng))
                } else {
                    CustomerSelector::ById(self.random_customer(rng))
                };
                self.order_status_graph(db, w_id, d_id, selector)
            }
            TpccTxn::NewOrder => {
                let (w_id, d_id, c_id, items) = self.new_order_inputs(rng);
                self.new_order_graph(db, w_id, d_id, c_id, items)
            }
            TpccTxn::Delivery => {
                let w_id = uniform(rng, 1, self.warehouses);
                let carrier = uniform(rng, 1, 10);
                self.delivery_graph(db, w_id, carrier)
            }
            TpccTxn::StockLevel => {
                let w_id = uniform(rng, 1, self.warehouses);
                let d_id = uniform(rng, 1, DISTRICTS_PER_WAREHOUSE);
                let threshold = uniform(rng, 10, 20);
                self.stock_level_graph(db, w_id, d_id, threshold)
            }
        };
        let graph = match graph {
            Ok(graph) => graph,
            Err(_) => return TxnOutcome::Aborted,
        };
        match engine.execute(graph) {
            Ok(()) => TxnOutcome::Committed,
            Err(_) => TxnOutcome::Aborted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dora_core::DoraConfig;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn small_tpcc() -> (Arc<Database>, Tpcc) {
        let db = Database::for_tests();
        let workload = Tpcc::with_scale(2, 30, 50);
        workload.setup(&db).unwrap();
        (db, workload)
    }

    #[test]
    fn load_populates_catalog_tables() {
        let (db, workload) = small_tpcc();
        let tables = workload.tables(&db).unwrap();
        assert_eq!(db.row_count(tables.warehouse).unwrap(), 2);
        assert_eq!(db.row_count(tables.district).unwrap(), 20);
        assert_eq!(db.row_count(tables.customer).unwrap(), 2 * 10 * 30);
        assert_eq!(db.row_count(tables.item).unwrap(), 50);
        assert_eq!(db.row_count(tables.stock).unwrap(), 100);
    }

    #[test]
    fn payment_baseline_and_dora_produce_identical_balances() {
        let db_base = Database::for_tests();
        let db_dora = Database::for_tests();
        let workload_base = Tpcc::with_scale(2, 30, 50);
        let workload_dora = Tpcc::with_scale(2, 30, 50);
        workload_base.setup(&db_base).unwrap();
        workload_dora.setup(&db_dora).unwrap();
        let baseline = crate::spec::TestExecutor::new(Arc::clone(&db_base));
        let dora = DoraEngine::new(Arc::clone(&db_dora), DoraConfig::for_tests());
        workload_dora.bind_dora(&dora, 2).unwrap();

        // The same deterministic payments through both engines.
        for i in 1..=20i64 {
            let w_id = (i % 2) + 1;
            let d_id = (i % 10) + 1;
            let c_id = (i % 30) + 1;
            let amount = i as f64;
            let outcome = baseline
                .execute_txn(&|db, txn| {
                    workload_base.payment_baseline(
                        db,
                        txn,
                        w_id,
                        d_id,
                        w_id,
                        d_id,
                        CustomerSelector::ById(c_id),
                        amount,
                    )
                })
                .unwrap();
            assert_eq!(outcome, BaselineOutcome::Committed);
            let graph = workload_dora
                .payment_graph(
                    &db_dora,
                    w_id,
                    d_id,
                    w_id,
                    d_id,
                    CustomerSelector::ById(c_id),
                    amount,
                )
                .unwrap();
            dora.execute(graph).unwrap();
        }

        let tables = workload_base.tables(&db_base).unwrap();
        let check_base = db_base.begin();
        let check_dora = db_dora.begin();
        for w_id in 1..=2i64 {
            let (_, wh_base) = db_base
                .probe_primary(
                    &check_base,
                    tables.warehouse,
                    &Key::int(w_id),
                    false,
                    CcMode::Full,
                )
                .unwrap()
                .unwrap();
            let (_, wh_dora) = db_dora
                .probe_primary(
                    &check_dora,
                    tables.warehouse,
                    &Key::int(w_id),
                    false,
                    CcMode::Full,
                )
                .unwrap()
                .unwrap();
            assert_eq!(wh_base[2], wh_dora[2], "warehouse {w_id} YTD must match");
        }
        assert_eq!(db_base.row_count(tables.history).unwrap(), 20);
        assert_eq!(db_dora.row_count(tables.history).unwrap(), 20);
        db_base.commit(&check_base).unwrap();
        db_dora.commit(&check_dora).unwrap();
        dora.shutdown();
    }

    #[test]
    fn new_order_then_order_status_and_delivery_roundtrip() {
        let (db, workload) = small_tpcc();
        let engine = DoraEngine::new(Arc::clone(&db), DoraConfig::for_tests());
        workload.bind_dora(&engine, 2).unwrap();
        let initial_order_lines = db
            .row_count(workload.tables(&db).unwrap().order_line)
            .unwrap();
        // Place an order for customer 5 in (1, 1).
        let items = vec![(1, 2), (2, 3), (3, 1), (4, 4), (5, 1)];
        let graph = workload
            .new_order_graph(&db, 1, 1, 5, items.clone())
            .unwrap();
        engine.execute(graph).unwrap();
        // OrderStatus for that customer must find the order and its lines.
        let graph = workload
            .order_status_graph(&db, 1, 1, CustomerSelector::ById(5))
            .unwrap();
        engine.execute(graph).unwrap();
        // Delivery picks it up.
        let graph = workload.delivery_graph(&db, 1, 7).unwrap();
        engine.execute(graph).unwrap();
        // StockLevel still works afterwards.
        let graph = workload.stock_level_graph(&db, 1, 1, 100).unwrap();
        engine.execute(graph).unwrap();

        let tables = workload.tables(&db).unwrap();
        let check = db.begin();
        // The new-order entry was consumed by Delivery.
        assert_eq!(db.row_count(tables.new_order).unwrap(), 0);
        // The customer received the delivery (delivery count bumped).
        let (_, customer) = db
            .probe_primary(
                &check,
                tables.customer,
                &Key::int3(1, 1, 5),
                false,
                CcMode::Full,
            )
            .unwrap()
            .unwrap();
        assert_eq!(customer[7], Value::Int(1));
        // The new order added exactly its 5 lines on top of the loaded data.
        assert_eq!(
            db.row_count(tables.order_line).unwrap(),
            initial_order_lines + 5
        );
        db.commit(&check).unwrap();
        engine.shutdown();
    }

    #[test]
    fn invalid_item_aborts_new_order_under_both_engines() {
        let (db, workload) = small_tpcc();
        let baseline = crate::spec::TestExecutor::new(Arc::clone(&db));
        let bad_items = vec![(1, 1), (2, 1), (3, 1), (4, 1), (9_999_999, 1)];
        let outcome = baseline
            .execute_txn(&|db, txn| workload.new_order_baseline(db, txn, 1, 1, 1, &bad_items))
            .unwrap();
        assert_eq!(outcome, BaselineOutcome::Aborted);

        let engine = DoraEngine::new(Arc::clone(&db), DoraConfig::for_tests());
        workload.bind_dora(&engine, 2).unwrap();
        let graph = workload.new_order_graph(&db, 1, 1, 1, bad_items).unwrap();
        assert!(engine.execute(graph).is_err());
        // District order counter must not have advanced permanently: both
        // attempts rolled back, so it still holds the loader's initial value
        // (one historical order per customer).
        let tables = workload.tables(&db).unwrap();
        let check = db.begin();
        let (_, district) = db
            .probe_primary(
                &check,
                tables.district,
                &Key::int2(1, 1),
                false,
                CcMode::Full,
            )
            .unwrap()
            .unwrap();
        assert_eq!(district[4], Value::Int(31));
        db.commit(&check).unwrap();
        engine.shutdown();
    }

    #[test]
    fn payment_by_last_name_uses_secondary_index() {
        let (db, workload) = small_tpcc();
        let baseline = crate::spec::TestExecutor::new(Arc::clone(&db));
        // Customer 7's last name under the loader's naming scheme.
        let last = c_last(7);
        let outcome = baseline
            .execute_txn(&|db, txn| {
                workload.payment_baseline(
                    db,
                    txn,
                    1,
                    1,
                    1,
                    1,
                    CustomerSelector::ByLastName(last.clone()),
                    25.0,
                )
            })
            .unwrap();
        assert_eq!(outcome, BaselineOutcome::Committed);
    }

    #[test]
    fn full_mix_runs_on_both_engines() {
        let (db, workload) = small_tpcc();
        let baseline = crate::spec::TestExecutor::new(Arc::clone(&db));
        let mut rng = SmallRng::seed_from_u64(77);
        let mut baseline_committed = 0;
        for _ in 0..60 {
            if workload.run_baseline(&baseline, &mut rng) == TxnOutcome::Committed {
                baseline_committed += 1;
            }
        }
        assert!(
            baseline_committed > 30,
            "baseline committed only {baseline_committed}/60"
        );

        let engine = DoraEngine::new(Arc::clone(&db), DoraConfig::for_tests());
        workload.bind_dora(&engine, 2).unwrap();
        let mut dora_committed = 0;
        for _ in 0..60 {
            if workload.run_dora(&engine, &mut rng) == TxnOutcome::Committed {
                dora_committed += 1;
            }
        }
        assert!(
            dora_committed > 30,
            "DORA committed only {dora_committed}/60"
        );
        engine.shutdown();
    }
}
