//! TPC-C: the order-entry benchmark.
//!
//! Five transactions over nine tables, each defined exactly once as a
//! [`TxnProgram`]. The paper's evaluation uses Payment (the running example
//! of Figure 4 and the access-pattern trace of Figure 10), OrderStatus
//! (Figures 2b, 5, 6 and 8) and NewOrder (the intra-transaction-parallelism
//! result of Figure 7); Delivery and StockLevel complete the mix.
//!
//! Every table except Item routes on the warehouse id. Item is a read-only
//! catalog table routed on the item id. The Customer secondary index on
//! (warehouse, district, last name) contains the routing field, so — as the
//! paper discusses in Section 4.1.2 — customer-by-last-name accesses are
//! still routable and need not become secondary actions.

use std::sync::OnceLock;

use rand::rngs::SmallRng;

use dora_common::prelude::*;
use dora_core::{
    DoraEngine, KeyAtom, LocalMode, OnDuplicate, OnMissing, ProgramTemplate, Step, StepCtx,
    StepTemplate, TxnProgram,
};

use dora_storage::{ColumnDef, Database, IndexSpec, TableSchema};

use crate::spec::{c_last, chance, nurand, uniform, Workload};

/// Districts per warehouse (fixed by the specification).
pub const DISTRICTS_PER_WAREHOUSE: i64 = 10;

/// Which part of the TPC-C mix to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TpccMix {
    /// The standard five-transaction mix.
    Full,
    /// Only Payment transactions (Figures 4, 9 and 10).
    PaymentOnly,
    /// Only OrderStatus transactions (Figures 2b, 5, 6, 8).
    OrderStatusOnly,
    /// Only NewOrder transactions (Figure 7).
    NewOrderOnly,
}

#[derive(Debug, Clone, Copy)]
struct TpccTables {
    warehouse: TableId,
    district: TableId,
    customer: TableId,
    history: TableId,
    new_order: TableId,
    orders: TableId,
    order_line: TableId,
    item: TableId,
    stock: TableId,
    customer_by_name: IndexId,
    orders_by_customer: IndexId,
}

/// The TPC-C workload.
#[derive(Debug)]
pub struct Tpcc {
    warehouses: i64,
    customers_per_district: i64,
    items: i64,
    mix: TpccMix,
    tables: OnceLock<TpccTables>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TpccTxn {
    NewOrder,
    Payment,
    OrderStatus,
    Delivery,
    StockLevel,
}

impl Tpcc {
    /// Label for the Payment transaction.
    pub const PAYMENT: &'static str = "tpcc-payment";
    /// Label for the OrderStatus transaction.
    pub const ORDER_STATUS: &'static str = "tpcc-order-status";
    /// Label for the NewOrder transaction.
    pub const NEW_ORDER: &'static str = "tpcc-new-order";
    /// Label for the Delivery transaction.
    pub const DELIVERY: &'static str = "tpcc-delivery";
    /// Label for the StockLevel transaction.
    pub const STOCK_LEVEL: &'static str = "tpcc-stock-level";

    /// All five transaction-type labels.
    pub const ALL_LABELS: [&'static str; 5] = [
        Self::NEW_ORDER,
        Self::PAYMENT,
        Self::ORDER_STATUS,
        Self::DELIVERY,
        Self::STOCK_LEVEL,
    ];

    /// Creates a TPC-C workload with full-size districts (3 000 customers)
    /// and a 10 000-item catalog.
    pub fn new(warehouses: i64) -> Self {
        Self::with_scale(warehouses, 3_000, 10_000)
    }

    /// Creates a TPC-C workload with reduced per-district and item scales
    /// (used by tests and quick benchmark runs; contention behaviour is
    /// governed by the warehouse count, not by these).
    pub fn with_scale(warehouses: i64, customers_per_district: i64, items: i64) -> Self {
        Self {
            warehouses: warehouses.max(1),
            customers_per_district: customers_per_district.max(1),
            items: items.max(1),
            mix: TpccMix::Full,
            tables: OnceLock::new(),
        }
    }

    /// Restricts the mix.
    pub fn with_mix(mut self, mix: TpccMix) -> Self {
        self.mix = mix;
        self
    }

    /// Number of warehouses.
    pub fn warehouses(&self) -> i64 {
        self.warehouses
    }

    fn tables(&self, db: &Database) -> DbResult<TpccTables> {
        if let Some(tables) = self.tables.get() {
            return Ok(*tables);
        }
        let tables = TpccTables {
            warehouse: db.table_id("warehouse")?,
            district: db.table_id("district")?,
            customer: db.table_id("customer")?,
            history: db.table_id("history_c")?,
            new_order: db.table_id("new_order")?,
            orders: db.table_id("orders")?,
            order_line: db.table_id("order_line")?,
            item: db.table_id("item")?,
            stock: db.table_id("stock")?,
            customer_by_name: db.index_id("customer_by_name")?,
            orders_by_customer: db.index_id("orders_by_customer")?,
        };
        let _ = self.tables.set(tables);
        Ok(tables)
    }

    fn pick(&self, rng: &mut SmallRng) -> TpccTxn {
        match self.mix {
            TpccMix::PaymentOnly => return TpccTxn::Payment,
            TpccMix::OrderStatusOnly => return TpccTxn::OrderStatus,
            TpccMix::NewOrderOnly => return TpccTxn::NewOrder,
            TpccMix::Full => {}
        }
        // Standard-ish mix: 45% NewOrder, 43% Payment, 4% each of the rest.
        match uniform(rng, 0, 99) {
            0..=44 => TpccTxn::NewOrder,
            45..=87 => TpccTxn::Payment,
            88..=91 => TpccTxn::OrderStatus,
            92..=95 => TpccTxn::Delivery,
            _ => TpccTxn::StockLevel,
        }
    }

    fn random_customer(&self, rng: &mut SmallRng) -> i64 {
        nurand(rng, 1023, 1, self.customers_per_district)
    }

    fn random_item(&self, rng: &mut SmallRng) -> i64 {
        nurand(rng, 8191, 1, self.items)
    }

    /// Resolves a customer either by id or (60% of the time, as in the
    /// Payment specification) by last name through the secondary index,
    /// returning its (rid, c_id). The concurrency-control mode comes from
    /// the step context, so the same code serves both compilations.
    fn resolve_customer(
        tables: &TpccTables,
        ctx: &StepCtx<'_>,
        w_id: i64,
        d_id: i64,
        customer: &CustomerSelector,
    ) -> DbResult<(Rid, i64)> {
        match customer {
            CustomerSelector::ByLastName(last) => {
                let hits = ctx.db.probe_secondary(
                    ctx.txn,
                    tables.customer_by_name,
                    &Key::from_values([
                        Value::Int(w_id),
                        Value::Int(d_id),
                        Value::Text(last.clone()),
                    ]),
                    ctx.cc(),
                )?;
                // The specification picks the middle customer of the sorted
                // matches; entries are already grouped under one key.
                let Some(entry) = hits.get(hits.len() / 2) else {
                    return Err(ctx.abort("no customer with last name"));
                };
                let row = ctx
                    .db
                    .read_rid(ctx.txn, tables.customer, entry.rid, false, ctx.cc())?;
                Ok((entry.rid, row[2].as_int()?))
            }
            CustomerSelector::ById(c_id) => {
                match ctx.db.probe_primary(
                    ctx.txn,
                    tables.customer,
                    &Key::int3(w_id, d_id, *c_id),
                    false,
                    ctx.cc(),
                )? {
                    Some((rid, _)) => Ok((rid, *c_id)),
                    None => Err(ctx.abort("no such customer")),
                }
            }
        }
    }

    // ----- Payment -----------------------------------------------------------

    /// The Payment transaction, defined once — exactly Figure 4: phase one
    /// updates the Warehouse, District and Customer (the customer possibly
    /// on a remote warehouse's executor, which DORA handles by simply
    /// routing that step elsewhere), an RVP, then phase two inserts the
    /// History record (whose insert still takes a centralized row lock under
    /// DORA, Section 4.2.1).
    #[allow(clippy::too_many_arguments)]
    pub fn payment_program(
        &self,
        db: &Database,
        w_id: i64,
        d_id: i64,
        c_w_id: i64,
        c_d_id: i64,
        customer: CustomerSelector,
        amount: f64,
    ) -> DbResult<TxnProgram> {
        let tables = self.tables(db)?;
        Ok(TxnProgram::new(Self::PAYMENT)
            .update(
                "payment-warehouse",
                tables.warehouse,
                Key::int(w_id),
                Key::int(w_id),
                OnMissing::Error,
                move |_ctx, row| {
                    let ytd = row[2].as_float()?;
                    row[2] = Value::Float(ytd + amount);
                    Ok(())
                },
            )
            .update(
                "payment-district",
                tables.district,
                Key::int2(w_id, d_id),
                Key::int2(w_id, d_id),
                OnMissing::Error,
                move |_ctx, row| {
                    let ytd = row[3].as_float()?;
                    row[3] = Value::Float(ytd + amount);
                    Ok(())
                },
            )
            .custom(
                "payment-customer",
                tables.customer,
                Key::int2(c_w_id, c_d_id),
                LocalMode::Exclusive,
                move |ctx| {
                    let (rid, c_id) =
                        Self::resolve_customer(&tables, ctx, c_w_id, c_d_id, &customer)?;
                    ctx.db
                        .update_rid(ctx.txn, tables.customer, rid, ctx.cc(), |row| {
                            let balance = row[4].as_float()?;
                            let ytd = row[5].as_float()?;
                            let count = row[6].as_int()?;
                            row[4] = Value::Float(balance - amount);
                            row[5] = Value::Float(ytd + amount);
                            row[6] = Value::Int(count + 1);
                            Ok(())
                        })?;
                    ctx.scratch.put("c_id", c_id);
                    Ok(())
                },
            )
            .rvp()
            .insert(
                "payment-history",
                tables.history,
                Key::int(w_id),
                OnDuplicate::Error,
                move |ctx| {
                    let c_id = ctx.scratch.get_int("c_id")?;
                    Ok(vec![
                        Value::Int(w_id),
                        Value::Int(d_id),
                        Value::Int(c_id),
                        Value::Float(amount),
                        Value::Int(ctx.txn.id().0 as i64),
                    ])
                },
            ))
    }

    // ----- OrderStatus -------------------------------------------------------

    /// The OrderStatus transaction: read the customer, then (after an RVP)
    /// the latest order, then its order lines — three phases chained by data
    /// dependencies, all of whose steps are routable because every
    /// identifier starts with the warehouse id.
    pub fn order_status_program(
        &self,
        db: &Database,
        w_id: i64,
        d_id: i64,
        customer: CustomerSelector,
    ) -> DbResult<TxnProgram> {
        let tables = self.tables(db)?;
        Ok(TxnProgram::new(Self::ORDER_STATUS)
            .custom(
                "orderstatus-customer",
                tables.customer,
                Key::int2(w_id, d_id),
                LocalMode::Shared,
                move |ctx| {
                    let (_, c_id) = Self::resolve_customer(&tables, ctx, w_id, d_id, &customer)?;
                    ctx.scratch.put("c_id", c_id);
                    Ok(())
                },
            )
            .rvp()
            .custom(
                "orderstatus-order",
                tables.orders,
                Key::int2(w_id, d_id),
                LocalMode::Shared,
                move |ctx| {
                    let c_id = ctx.scratch.get_int("c_id")?;
                    let orders = ctx.db.probe_secondary(
                        ctx.txn,
                        tables.orders_by_customer,
                        &Key::int3(w_id, d_id, c_id),
                        ctx.cc(),
                    )?;
                    let Some(latest) = orders.iter().map(|e| e.rid).max_by_key(|rid| rid.pack())
                    else {
                        return Err(ctx.abort("customer has no orders"));
                    };
                    let order = ctx
                        .db
                        .read_rid(ctx.txn, tables.orders, latest, false, ctx.cc())?;
                    ctx.scratch.put("o_id", order[2].as_int()?);
                    Ok(())
                },
            )
            .rvp()
            .custom(
                "orderstatus-orderlines",
                tables.order_line,
                Key::int2(w_id, d_id),
                LocalMode::Shared,
                move |ctx| {
                    let o_id = ctx.scratch.get_int("o_id")?;
                    let mut line_number = 1;
                    while ctx
                        .db
                        .probe_primary(
                            ctx.txn,
                            tables.order_line,
                            &Key::from_values([w_id, d_id, o_id, line_number]),
                            false,
                            ctx.cc(),
                        )?
                        .is_some()
                    {
                        line_number += 1;
                    }
                    Ok(())
                },
            ))
    }

    // ----- NewOrder ----------------------------------------------------------

    /// The NewOrder transaction. `items` is the order's item list
    /// (item id, quantity); an invalid item id aborts the whole transaction
    /// (as ~1% of generated NewOrders do, per the specification).
    ///
    /// Phase one reads the customer and the items (item steps route on the
    /// item id — under DORA they fan out to the Item table's executors) and
    /// advances the district's order counter; phase two inserts the order,
    /// the new-order entry and the order lines and updates the stock.
    pub fn new_order_program(
        &self,
        db: &Database,
        w_id: i64,
        d_id: i64,
        c_id: i64,
        items: Vec<(i64, i64)>,
    ) -> DbResult<TxnProgram> {
        let tables = self.tables(db)?;
        let mut program = TxnProgram::new(Self::NEW_ORDER)
            .read(
                "neworder-customer",
                tables.customer,
                Key::int2(w_id, d_id),
                Key::int3(w_id, d_id, c_id),
                OnMissing::Abort("no such customer"),
                |_ctx, _row| Ok(()),
            )
            .update(
                "neworder-district",
                tables.district,
                Key::int2(w_id, d_id),
                Key::int2(w_id, d_id),
                OnMissing::Error,
                |ctx, row| {
                    let o_id = row[4].as_int()?;
                    row[4] = Value::Int(o_id + 1);
                    ctx.scratch.put("o_id", o_id);
                    Ok(())
                },
            );
        // One read-only step per item, routed on the item id.
        for (index, (item_id, _)) in items.iter().enumerate() {
            let item_id = *item_id;
            let slot = format!("price_{index}");
            program = program.step(Step::read(
                "neworder-item",
                tables.item,
                Key::int(item_id),
                Key::int(item_id),
                OnMissing::Abort("unused item id"),
                move |ctx, row| {
                    ctx.scratch.put(&slot, row[2].as_float()?);
                    Ok(())
                },
            ));
        }

        // Phase two: all the inserts plus the stock updates, grouped per
        // table into merged steps keyed by the warehouse (consecutive
        // actions with the same identifier can be merged, Section 4.1.2).
        let items_for_stock = items.clone();
        let items_for_lines = items.clone();
        let item_count = items.len();
        Ok(program
            .rvp()
            .custom(
                "neworder-stock",
                tables.stock,
                Key::int(w_id),
                LocalMode::Exclusive,
                move |ctx| {
                    for (item_id, quantity) in &items_for_stock {
                        ctx.db.update_primary(
                            ctx.txn,
                            tables.stock,
                            &Key::int2(w_id, *item_id),
                            ctx.cc(),
                            |row| {
                                let quantity_now = row[2].as_int()?;
                                let new_quantity = if quantity_now >= quantity + 10 {
                                    quantity_now - quantity
                                } else {
                                    quantity_now + 91 - quantity
                                };
                                row[2] = Value::Int(new_quantity);
                                row[3] = Value::Int(row[3].as_int()? + quantity);
                                row[4] = Value::Int(row[4].as_int()? + 1);
                                Ok(())
                            },
                        )?;
                    }
                    Ok(())
                },
            )
            .insert(
                "neworder-orders",
                tables.orders,
                Key::int(w_id),
                OnDuplicate::Error,
                move |ctx| {
                    let o_id = ctx.scratch.get_int("o_id")?;
                    Ok(vec![
                        Value::Int(w_id),
                        Value::Int(d_id),
                        Value::Int(o_id),
                        Value::Int(c_id),
                        Value::Int(0),
                        Value::Int(item_count as i64),
                    ])
                },
            )
            .insert(
                "neworder-newordertab",
                tables.new_order,
                Key::int(w_id),
                OnDuplicate::Error,
                move |ctx| {
                    let o_id = ctx.scratch.get_int("o_id")?;
                    Ok(vec![Value::Int(w_id), Value::Int(d_id), Value::Int(o_id)])
                },
            )
            .custom(
                "neworder-orderlines",
                tables.order_line,
                Key::int(w_id),
                LocalMode::Exclusive,
                move |ctx| {
                    let o_id = ctx.scratch.get_int("o_id")?;
                    for (number, (item_id, quantity)) in items_for_lines.iter().enumerate() {
                        let price = ctx.scratch.get_float(&format!("price_{number}"))?;
                        ctx.db.insert(
                            ctx.txn,
                            tables.order_line,
                            vec![
                                Value::Int(w_id),
                                Value::Int(d_id),
                                Value::Int(o_id),
                                Value::Int(number as i64 + 1),
                                Value::Int(*item_id),
                                Value::Int(*quantity),
                                Value::Float(price * *quantity as f64),
                            ],
                            ctx.write_cc(),
                        )?;
                    }
                    Ok(())
                },
            ))
    }

    // ----- Delivery ----------------------------------------------------------

    /// The Delivery transaction: for every district of the warehouse,
    /// deliver the oldest undelivered order. All steps are keyed by the
    /// warehouse, so the per-district loops are merged into one step per
    /// table, chained by RVPs for the data dependencies.
    pub fn delivery_program(&self, db: &Database, w_id: i64, carrier: i64) -> DbResult<TxnProgram> {
        let tables = self.tables(db)?;
        Ok(TxnProgram::new(Self::DELIVERY)
            .custom(
                "delivery-neworder",
                tables.new_order,
                Key::int(w_id),
                LocalMode::Exclusive,
                move |ctx| {
                    for d_id in 1..=DISTRICTS_PER_WAREHOUSE {
                        let mut oldest: Option<i64> = None;
                        ctx.db
                            .scan_table(ctx.txn, tables.new_order, ctx.cc(), |_, row| {
                                if row[0] == Value::Int(w_id) && row[1] == Value::Int(d_id) {
                                    let o_id = row[2].as_int().unwrap_or(i64::MAX);
                                    oldest =
                                        Some(oldest.map_or(o_id, |current: i64| current.min(o_id)));
                                }
                            })?;
                        if let Some(o_id) = oldest {
                            ctx.db.delete_primary(
                                ctx.txn,
                                tables.new_order,
                                &Key::int3(w_id, d_id, o_id),
                                ctx.write_cc(),
                            )?;
                            ctx.scratch.put(&format!("deliver_{d_id}"), o_id);
                        }
                    }
                    Ok(())
                },
            )
            .rvp()
            .custom(
                "delivery-orders",
                tables.orders,
                Key::int(w_id),
                LocalMode::Exclusive,
                move |ctx| {
                    for d_id in 1..=DISTRICTS_PER_WAREHOUSE {
                        let Some(o_id) = ctx.scratch.get(&format!("deliver_{d_id}")) else {
                            continue;
                        };
                        let o_id = o_id.as_int()?;
                        let mut c_id = 0;
                        ctx.db.update_primary(
                            ctx.txn,
                            tables.orders,
                            &Key::int3(w_id, d_id, o_id),
                            ctx.cc(),
                            |row| {
                                c_id = row[3].as_int()?;
                                row[4] = Value::Int(carrier);
                                Ok(())
                            },
                        )?;
                        ctx.scratch.put(&format!("customer_{d_id}"), c_id);
                        // Sum the order lines while we are here (the same
                        // warehouse executor owns them under the same routing
                        // field, but they belong to another table; keep the
                        // sum simple by reading through the order_line
                        // primary key).
                        let mut amount = 0.0;
                        let mut line_number = 1;
                        while let Some((_, row)) = ctx.db.probe_primary(
                            ctx.txn,
                            tables.order_line,
                            &Key::from_values([w_id, d_id, o_id, line_number]),
                            false,
                            ctx.cc(),
                        )? {
                            amount += row[6].as_float()?;
                            line_number += 1;
                        }
                        ctx.scratch.put(&format!("amount_{d_id}"), amount);
                    }
                    Ok(())
                },
            )
            .rvp()
            .custom(
                "delivery-customer",
                tables.customer,
                Key::int(w_id),
                LocalMode::Exclusive,
                move |ctx| {
                    for d_id in 1..=DISTRICTS_PER_WAREHOUSE {
                        let Some(c_id) = ctx.scratch.get(&format!("customer_{d_id}")) else {
                            continue;
                        };
                        let c_id = c_id.as_int()?;
                        let amount = ctx
                            .scratch
                            .get_float(&format!("amount_{d_id}"))
                            .unwrap_or(0.0);
                        ctx.db.update_primary(
                            ctx.txn,
                            tables.customer,
                            &Key::int3(w_id, d_id, c_id),
                            ctx.cc(),
                            |row| {
                                row[4] = Value::Float(row[4].as_float()? + amount);
                                row[7] = Value::Int(row[7].as_int()? + 1);
                                Ok(())
                            },
                        )?;
                    }
                    Ok(())
                },
            ))
    }

    // ----- StockLevel --------------------------------------------------------

    /// The StockLevel transaction: count stock entries below `threshold`
    /// among the items of the district's 20 most recent orders — district
    /// read, then order-line collection, then the stock count, three phases
    /// chained by data dependencies, all keyed by the warehouse id.
    pub fn stock_level_program(
        &self,
        db: &Database,
        w_id: i64,
        d_id: i64,
        threshold: i64,
    ) -> DbResult<TxnProgram> {
        let tables = self.tables(db)?;
        Ok(TxnProgram::new(Self::STOCK_LEVEL)
            .read(
                "stocklevel-district",
                tables.district,
                Key::int2(w_id, d_id),
                Key::int2(w_id, d_id),
                OnMissing::Abort("no such district"),
                |ctx, row| {
                    ctx.scratch.put("next_o_id", row[4].as_int()?);
                    Ok(())
                },
            )
            .rvp()
            .custom(
                "stocklevel-orderlines",
                tables.order_line,
                Key::int2(w_id, d_id),
                LocalMode::Shared,
                move |ctx| {
                    let next_o_id = ctx.scratch.get_int("next_o_id")?;
                    let mut item_ids = Vec::new();
                    for o_id in (next_o_id - 20).max(0)..next_o_id {
                        let mut line_number = 1;
                        while let Some((_, row)) = ctx.db.probe_primary(
                            ctx.txn,
                            tables.order_line,
                            &Key::from_values([w_id, d_id, o_id, line_number]),
                            false,
                            ctx.cc(),
                        )? {
                            item_ids.push(row[4].as_int()?);
                            line_number += 1;
                        }
                    }
                    item_ids.sort_unstable();
                    item_ids.dedup();
                    ctx.scratch.put("distinct_items", item_ids.len() as i64);
                    for (index, item_id) in item_ids.iter().enumerate() {
                        ctx.scratch.put(&format!("item_{index}"), *item_id);
                    }
                    Ok(())
                },
            )
            .rvp()
            .custom(
                "stocklevel-stock",
                tables.stock,
                Key::int(w_id),
                LocalMode::Shared,
                move |ctx| {
                    let count = ctx.scratch.get_int("distinct_items")?;
                    let mut low = 0;
                    for index in 0..count {
                        let item_id = ctx.scratch.get_int(&format!("item_{index}"))?;
                        if let Some((_, stock)) = ctx.db.probe_primary(
                            ctx.txn,
                            tables.stock,
                            &Key::int2(w_id, item_id),
                            false,
                            ctx.cc(),
                        )? {
                            if stock[2].as_int()? < threshold {
                                low += 1;
                            }
                        }
                    }
                    let _ = low;
                    Ok(())
                },
            ))
    }

    // ----- input generation ---------------------------------------------------

    /// Generates Payment inputs: (w_id, d_id, c_w_id, c_d_id, selector, amount).
    pub fn payment_inputs(
        &self,
        rng: &mut SmallRng,
    ) -> (i64, i64, i64, i64, CustomerSelector, f64) {
        let w_id = uniform(rng, 1, self.warehouses);
        let d_id = uniform(rng, 1, DISTRICTS_PER_WAREHOUSE);
        // 15% of payments are for a customer of a remote warehouse.
        let (c_w_id, c_d_id) = if self.warehouses > 1 && chance(rng, 15) {
            let mut other = uniform(rng, 1, self.warehouses - 1);
            if other >= w_id {
                other += 1;
            }
            (other, uniform(rng, 1, DISTRICTS_PER_WAREHOUSE))
        } else {
            (w_id, d_id)
        };
        // 60% of the time the customer is selected by last name.
        let selector = if chance(rng, 60) {
            CustomerSelector::ByLastName(self.random_loaded_last_name(rng))
        } else {
            CustomerSelector::ById(self.random_customer(rng))
        };
        let amount = uniform(rng, 100, 500_000) as f64 / 100.0;
        (w_id, d_id, c_w_id, c_d_id, selector, amount)
    }

    /// A last name that is guaranteed to exist in the loaded data (the loader
    /// assigns `c_last(c_id % 1000)`).
    fn random_loaded_last_name(&self, rng: &mut SmallRng) -> String {
        let c_id = uniform(rng, 1, self.customers_per_district);
        c_last(c_id % 1000)
    }

    /// Generates NewOrder inputs: (w_id, d_id, c_id, items). Roughly 1% of
    /// the generated orders contain an invalid item id and must abort.
    pub fn new_order_inputs(&self, rng: &mut SmallRng) -> (i64, i64, i64, Vec<(i64, i64)>) {
        let w_id = uniform(rng, 1, self.warehouses);
        let d_id = uniform(rng, 1, DISTRICTS_PER_WAREHOUSE);
        let c_id = self.random_customer(rng);
        let count = uniform(rng, 5, 15);
        let mut items = Vec::with_capacity(count as usize);
        for _ in 0..count {
            items.push((self.random_item(rng), uniform(rng, 1, 10)));
        }
        if chance(rng, 1) {
            // Invalid item id, forcing a rollback as the specification does.
            items.last_mut().expect("at least 5 items").0 = self.items + 1_000_000;
        }
        (w_id, d_id, c_id, items)
    }
}

/// How Payment / OrderStatus select their customer.
#[derive(Debug, Clone)]
pub enum CustomerSelector {
    /// By primary key.
    ById(i64),
    /// By last name through the `customer_by_name` secondary index.
    ByLastName(String),
}

impl Workload for Tpcc {
    fn name(&self) -> &'static str {
        match self.mix {
            TpccMix::Full => "TPC-C",
            TpccMix::PaymentOnly => "TPC-C Payment",
            TpccMix::OrderStatusOnly => "TPC-C OrderStatus",
            TpccMix::NewOrderOnly => "TPC-C NewOrder",
        }
    }

    fn create_schema(&self, db: &Database) -> DbResult<()> {
        db.create_table(TableSchema::new(
            "warehouse",
            vec![
                ColumnDef::new("w_id", ValueType::Int),
                ColumnDef::new("w_name", ValueType::Text),
                ColumnDef::new("w_ytd", ValueType::Float),
            ],
            vec![0],
        ))?;
        db.create_table(TableSchema::new(
            "district",
            vec![
                ColumnDef::new("d_w_id", ValueType::Int),
                ColumnDef::new("d_id", ValueType::Int),
                ColumnDef::new("d_name", ValueType::Text),
                ColumnDef::new("d_ytd", ValueType::Float),
                ColumnDef::new("d_next_o_id", ValueType::Int),
            ],
            vec![0, 1],
        ))?;
        db.create_table(TableSchema::new(
            "customer",
            vec![
                ColumnDef::new("c_w_id", ValueType::Int),
                ColumnDef::new("c_d_id", ValueType::Int),
                ColumnDef::new("c_id", ValueType::Int),
                ColumnDef::new("c_last", ValueType::Text),
                ColumnDef::new("c_balance", ValueType::Float),
                ColumnDef::new("c_ytd_payment", ValueType::Float),
                ColumnDef::new("c_payment_cnt", ValueType::Int),
                ColumnDef::new("c_delivery_cnt", ValueType::Int),
            ],
            vec![0, 1, 2],
        ))?;
        db.create_table(TableSchema::new(
            "history_c",
            vec![
                ColumnDef::new("h_w_id", ValueType::Int),
                ColumnDef::new("h_d_id", ValueType::Int),
                ColumnDef::new("h_c_id", ValueType::Int),
                ColumnDef::new("h_amount", ValueType::Float),
                ColumnDef::new("h_tid", ValueType::Int),
            ],
            vec![0, 4],
        ))?;
        db.create_table(TableSchema::new(
            "new_order",
            vec![
                ColumnDef::new("no_w_id", ValueType::Int),
                ColumnDef::new("no_d_id", ValueType::Int),
                ColumnDef::new("no_o_id", ValueType::Int),
            ],
            vec![0, 1, 2],
        ))?;
        db.create_table(TableSchema::new(
            "orders",
            vec![
                ColumnDef::new("o_w_id", ValueType::Int),
                ColumnDef::new("o_d_id", ValueType::Int),
                ColumnDef::new("o_id", ValueType::Int),
                ColumnDef::new("o_c_id", ValueType::Int),
                ColumnDef::new("o_carrier_id", ValueType::Int),
                ColumnDef::new("o_ol_cnt", ValueType::Int),
            ],
            vec![0, 1, 2],
        ))?;
        db.create_table(TableSchema::new(
            "order_line",
            vec![
                ColumnDef::new("ol_w_id", ValueType::Int),
                ColumnDef::new("ol_d_id", ValueType::Int),
                ColumnDef::new("ol_o_id", ValueType::Int),
                ColumnDef::new("ol_number", ValueType::Int),
                ColumnDef::new("ol_i_id", ValueType::Int),
                ColumnDef::new("ol_quantity", ValueType::Int),
                ColumnDef::new("ol_amount", ValueType::Float),
            ],
            vec![0, 1, 2, 3],
        ))?;
        db.create_table(TableSchema::new(
            "item",
            vec![
                ColumnDef::new("i_id", ValueType::Int),
                ColumnDef::new("i_name", ValueType::Text),
                ColumnDef::new("i_price", ValueType::Float),
            ],
            vec![0],
        ))?;
        db.create_table(TableSchema::new(
            "stock",
            vec![
                ColumnDef::new("s_w_id", ValueType::Int),
                ColumnDef::new("s_i_id", ValueType::Int),
                ColumnDef::new("s_quantity", ValueType::Int),
                ColumnDef::new("s_ytd", ValueType::Int),
                ColumnDef::new("s_order_cnt", ValueType::Int),
            ],
            vec![0, 1],
        ))?;
        let customer = db.table_id("customer")?;
        db.create_index(IndexSpec {
            name: "customer_by_name".into(),
            table: customer,
            key_columns: vec![0, 1, 3],
            unique: false,
        })?;
        let orders = db.table_id("orders")?;
        db.create_index(IndexSpec {
            name: "orders_by_customer".into(),
            table: orders,
            key_columns: vec![0, 1, 3],
            unique: false,
        })?;
        Ok(())
    }

    fn load(&self, db: &Database) -> DbResult<()> {
        let tables = self.tables(db)?;
        for item in 1..=self.items {
            db.load_row(
                tables.item,
                vec![
                    Value::Int(item),
                    Value::Text(format!("item-{item}")),
                    Value::Float(1.0 + (item % 100) as f64),
                ],
            )?;
        }
        for w_id in 1..=self.warehouses {
            db.load_row(
                tables.warehouse,
                vec![
                    Value::Int(w_id),
                    Value::Text(format!("warehouse-{w_id}")),
                    Value::Float(0.0),
                ],
            )?;
            for item in 1..=self.items {
                db.load_row(
                    tables.stock,
                    vec![
                        Value::Int(w_id),
                        Value::Int(item),
                        Value::Int(50 + ((w_id + item) % 50)),
                        Value::Int(0),
                        Value::Int(0),
                    ],
                )?;
            }
            for d_id in 1..=DISTRICTS_PER_WAREHOUSE {
                // Each district starts with one historical order per customer
                // (o_id == c_id), so OrderStatus always has an order to find;
                // the next order id continues from there.
                db.load_row(
                    tables.district,
                    vec![
                        Value::Int(w_id),
                        Value::Int(d_id),
                        Value::Text(format!("district-{w_id}-{d_id}")),
                        Value::Float(0.0),
                        Value::Int(self.customers_per_district + 1),
                    ],
                )?;
                for c_id in 1..=self.customers_per_district {
                    db.load_row(
                        tables.customer,
                        vec![
                            Value::Int(w_id),
                            Value::Int(d_id),
                            Value::Int(c_id),
                            Value::Text(c_last(c_id % 1000)),
                            Value::Float(-10.0),
                            Value::Float(10.0),
                            Value::Int(1),
                            Value::Int(0),
                        ],
                    )?;
                    let o_id = c_id;
                    let line_count = 3;
                    db.load_row(
                        tables.orders,
                        vec![
                            Value::Int(w_id),
                            Value::Int(d_id),
                            Value::Int(o_id),
                            Value::Int(c_id),
                            Value::Int(1 + (o_id % 10)),
                            Value::Int(line_count),
                        ],
                    )?;
                    for number in 1..=line_count {
                        let item = 1 + ((o_id * 7 + number) % self.items);
                        db.load_row(
                            tables.order_line,
                            vec![
                                Value::Int(w_id),
                                Value::Int(d_id),
                                Value::Int(o_id),
                                Value::Int(number),
                                Value::Int(item),
                                Value::Int(1 + (number % 5)),
                                Value::Float(10.0 + number as f64),
                            ],
                        )?;
                    }
                }
            }
        }
        Ok(())
    }

    fn bind_dora(&self, engine: &DoraEngine, executors_per_table: usize) -> DbResult<()> {
        let tables = self.tables(engine.db())?;
        for table in [
            tables.warehouse,
            tables.district,
            tables.customer,
            tables.history,
            tables.new_order,
            tables.orders,
            tables.order_line,
            tables.stock,
        ] {
            engine.bind_table(table, executors_per_table, 1, self.warehouses)?;
        }
        // Item routes on the item id.
        engine.bind_table(tables.item, executors_per_table, 1, self.items)?;
        Ok(())
    }

    fn txn_labels(&self) -> &'static [&'static str] {
        match self.mix {
            TpccMix::Full => &Self::ALL_LABELS,
            TpccMix::PaymentOnly => &[Self::PAYMENT],
            TpccMix::OrderStatusOnly => &[Self::ORDER_STATUS],
            TpccMix::NewOrderOnly => &[Self::NEW_ORDER],
        }
    }

    fn next_program(&self, db: &Database, rng: &mut SmallRng) -> DbResult<TxnProgram> {
        match self.pick(rng) {
            TpccTxn::Payment => {
                let (w_id, d_id, c_w_id, c_d_id, selector, amount) = self.payment_inputs(rng);
                self.payment_program(db, w_id, d_id, c_w_id, c_d_id, selector, amount)
            }
            TpccTxn::OrderStatus => {
                let w_id = uniform(rng, 1, self.warehouses);
                let d_id = uniform(rng, 1, DISTRICTS_PER_WAREHOUSE);
                let selector = if chance(rng, 60) {
                    CustomerSelector::ByLastName(self.random_loaded_last_name(rng))
                } else {
                    CustomerSelector::ById(self.random_customer(rng))
                };
                self.order_status_program(db, w_id, d_id, selector)
            }
            TpccTxn::NewOrder => {
                let (w_id, d_id, c_id, items) = self.new_order_inputs(rng);
                self.new_order_program(db, w_id, d_id, c_id, items)
            }
            TpccTxn::Delivery => {
                let w_id = uniform(rng, 1, self.warehouses);
                let carrier = uniform(rng, 1, 10);
                self.delivery_program(db, w_id, carrier)
            }
            TpccTxn::StockLevel => {
                let w_id = uniform(rng, 1, self.warehouses);
                let d_id = uniform(rng, 1, DISTRICTS_PER_WAREHOUSE);
                let threshold = uniform(rng, 10, 20);
                self.stock_level_program(db, w_id, d_id, threshold)
            }
        }
    }

    /// Step templates mirroring the five programs above. Routes follow the
    /// identifiers each program builds (warehouse id, warehouse+district, or
    /// item id); read/write column sets are exactly what each step's body
    /// touches. Customer-resolution steps declare reads `{2, 3}` (c_id and
    /// last name) because of the by-last-name path; the History insert's
    /// primary key is `(w_id, txn-id)`, whose second component is unique per
    /// transaction, so two instances can never collide.
    fn conflict_templates(&self, db: &Database) -> DbResult<Vec<ProgramTemplate>> {
        let tables = self.tables(db)?;
        let w = || vec![KeyAtom::Param("w_id")];
        let wd = || vec![KeyAtom::Param("w_id"), KeyAtom::Param("d_id")];
        let all = [
            ProgramTemplate::new(Self::PAYMENT)
                .step(StepTemplate::write("payment-warehouse", tables.warehouse, w()).writes([2]))
                .step(StepTemplate::write("payment-district", tables.district, wd()).writes([3]))
                .step(
                    StepTemplate::write("payment-customer", tables.customer, wd())
                        .reads([2, 3])
                        .writes([4, 5, 6])
                        .abort_rate(0.01),
                )
                .step(
                    StepTemplate::insert("payment-history", tables.history, w())
                        .full_key(vec![KeyAtom::Param("w_id"), KeyAtom::Unique]),
                ),
            ProgramTemplate::new(Self::ORDER_STATUS)
                .step(
                    StepTemplate::read("orderstatus-customer", tables.customer, wd())
                        .reads([2, 3])
                        .abort_rate(0.01),
                )
                .step(
                    StepTemplate::read("orderstatus-order", tables.orders, wd())
                        .reads([2, 3])
                        .abort_rate(0.02),
                )
                .step(
                    StepTemplate::read("orderstatus-orderlines", tables.order_line, wd())
                        .reads([6]),
                ),
            ProgramTemplate::new(Self::NEW_ORDER)
                .step(StepTemplate::read(
                    "neworder-customer",
                    tables.customer,
                    wd(),
                ))
                .step(
                    StepTemplate::write("neworder-district", tables.district, wd())
                        .reads([4])
                        .writes([4]),
                )
                .step(
                    StepTemplate::read("neworder-item", tables.item, vec![KeyAtom::Param("i_id")])
                        .reads([2])
                        .abort_rate(0.01),
                )
                .step(StepTemplate::write("neworder-stock", tables.stock, w()).writes([2, 3, 4]))
                .step(StepTemplate::insert("neworder-orders", tables.orders, w()))
                .step(StepTemplate::insert(
                    "neworder-newordertab",
                    tables.new_order,
                    w(),
                ))
                .step(StepTemplate::insert(
                    "neworder-orderlines",
                    tables.order_line,
                    w(),
                )),
            ProgramTemplate::new(Self::DELIVERY)
                .step(
                    StepTemplate::delete("delivery-neworder", tables.new_order, w())
                        .reads([0, 1, 2]),
                )
                .step(
                    StepTemplate::write("delivery-orders", tables.orders, w())
                        .reads([3])
                        .writes([4]),
                )
                .step(
                    StepTemplate::write("delivery-customer", tables.customer, w()).writes([4, 7]),
                ),
            ProgramTemplate::new(Self::STOCK_LEVEL)
                .step(StepTemplate::read("stocklevel-district", tables.district, wd()).reads([4]))
                .step(
                    StepTemplate::read("stocklevel-orderlines", tables.order_line, wd()).reads([4]),
                )
                .step(StepTemplate::read("stocklevel-stock", tables.stock, w()).reads([2])),
        ];
        Ok(all
            .into_iter()
            .filter(|program| self.txn_labels().contains(&program.name()))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{run_baseline_mix, run_baseline_once, run_dora_mix};
    use dora_core::DoraConfig;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn small_tpcc() -> (Arc<Database>, Tpcc) {
        let db = Database::for_tests();
        let workload = Tpcc::with_scale(2, 30, 50);
        workload.setup(&db).unwrap();
        (db, workload)
    }

    #[test]
    fn load_populates_catalog_tables() {
        let (db, workload) = small_tpcc();
        let tables = workload.tables(&db).unwrap();
        assert_eq!(db.row_count(tables.warehouse).unwrap(), 2);
        assert_eq!(db.row_count(tables.district).unwrap(), 20);
        assert_eq!(db.row_count(tables.customer).unwrap(), 2 * 10 * 30);
        assert_eq!(db.row_count(tables.item).unwrap(), 50);
        assert_eq!(db.row_count(tables.stock).unwrap(), 100);
    }

    #[test]
    fn payment_program_compiles_to_the_figure4_graph() {
        let (db, workload) = small_tpcc();
        let graph = workload
            .payment_program(&db, 1, 1, 1, 1, CustomerSelector::ById(1), 10.0)
            .unwrap()
            .compile_dora();
        assert_eq!(graph.phase_count(), 2, "Figure 4: two phases");
        assert_eq!(
            graph.actions_in(0),
            3,
            "warehouse, district and customer actions"
        );
        assert_eq!(graph.actions_in(1), 1, "history insert");
        assert!(graph.describe()[1][0].starts_with("payment-history"));
    }

    #[test]
    fn payment_baseline_and_dora_produce_identical_balances() {
        let db_base = Database::for_tests();
        let db_dora = Database::for_tests();
        let workload_base = Tpcc::with_scale(2, 30, 50);
        let workload_dora = Tpcc::with_scale(2, 30, 50);
        workload_base.setup(&db_base).unwrap();
        workload_dora.setup(&db_dora).unwrap();
        let dora = DoraEngine::new(Arc::clone(&db_dora), DoraConfig::for_tests());
        workload_dora.bind_dora(&dora, 2).unwrap();

        // The same deterministic payments through both compilations.
        for i in 1..=20i64 {
            let w_id = (i % 2) + 1;
            let d_id = (i % 10) + 1;
            let c_id = (i % 30) + 1;
            let amount = i as f64;
            let program = workload_base
                .payment_program(
                    &db_base,
                    w_id,
                    d_id,
                    w_id,
                    d_id,
                    CustomerSelector::ById(c_id),
                    amount,
                )
                .unwrap();
            assert_eq!(
                run_baseline_once(&db_base, program).unwrap(),
                BaselineOutcome::Committed
            );
            let program = workload_dora
                .payment_program(
                    &db_dora,
                    w_id,
                    d_id,
                    w_id,
                    d_id,
                    CustomerSelector::ById(c_id),
                    amount,
                )
                .unwrap();
            dora.execute(program.compile_dora()).unwrap();
        }

        let tables = workload_base.tables(&db_base).unwrap();
        let check_base = db_base.begin();
        let check_dora = db_dora.begin();
        for w_id in 1..=2i64 {
            let (_, wh_base) = db_base
                .probe_primary(
                    &check_base,
                    tables.warehouse,
                    &Key::int(w_id),
                    false,
                    CcMode::Full,
                )
                .unwrap()
                .unwrap();
            let (_, wh_dora) = db_dora
                .probe_primary(
                    &check_dora,
                    tables.warehouse,
                    &Key::int(w_id),
                    false,
                    CcMode::Full,
                )
                .unwrap()
                .unwrap();
            assert_eq!(wh_base[2], wh_dora[2], "warehouse {w_id} YTD must match");
        }
        assert_eq!(db_base.row_count(tables.history).unwrap(), 20);
        assert_eq!(db_dora.row_count(tables.history).unwrap(), 20);
        db_base.commit(&check_base).unwrap();
        db_dora.commit(&check_dora).unwrap();
        dora.shutdown();
    }

    #[test]
    fn new_order_then_order_status_and_delivery_roundtrip() {
        let (db, workload) = small_tpcc();
        let engine = DoraEngine::new(Arc::clone(&db), DoraConfig::for_tests());
        workload.bind_dora(&engine, 2).unwrap();
        let initial_order_lines = db
            .row_count(workload.tables(&db).unwrap().order_line)
            .unwrap();
        // Place an order for customer 5 in (1, 1).
        let items = vec![(1, 2), (2, 3), (3, 1), (4, 4), (5, 1)];
        let program = workload
            .new_order_program(&db, 1, 1, 5, items.clone())
            .unwrap();
        engine.execute(program.compile_dora()).unwrap();
        // OrderStatus for that customer must find the order and its lines.
        let program = workload
            .order_status_program(&db, 1, 1, CustomerSelector::ById(5))
            .unwrap();
        engine.execute(program.compile_dora()).unwrap();
        // Delivery picks it up.
        let program = workload.delivery_program(&db, 1, 7).unwrap();
        engine.execute(program.compile_dora()).unwrap();
        // StockLevel still works afterwards.
        let program = workload.stock_level_program(&db, 1, 1, 100).unwrap();
        engine.execute(program.compile_dora()).unwrap();

        let tables = workload.tables(&db).unwrap();
        let check = db.begin();
        // The new-order entry was consumed by Delivery.
        assert_eq!(db.row_count(tables.new_order).unwrap(), 0);
        // The customer received the delivery (delivery count bumped).
        let (_, customer) = db
            .probe_primary(
                &check,
                tables.customer,
                &Key::int3(1, 1, 5),
                false,
                CcMode::Full,
            )
            .unwrap()
            .unwrap();
        assert_eq!(customer[7], Value::Int(1));
        // The new order added exactly its 5 lines on top of the loaded data.
        assert_eq!(
            db.row_count(tables.order_line).unwrap(),
            initial_order_lines + 5
        );
        db.commit(&check).unwrap();
        engine.shutdown();
    }

    #[test]
    fn invalid_item_aborts_new_order_under_both_engines() {
        let (db, workload) = small_tpcc();
        let bad_items = vec![(1, 1), (2, 1), (3, 1), (4, 1), (9_999_999, 1)];
        let program = workload
            .new_order_program(&db, 1, 1, 1, bad_items.clone())
            .unwrap();
        assert_eq!(
            run_baseline_once(&db, program).unwrap(),
            BaselineOutcome::Aborted
        );

        let engine = DoraEngine::new(Arc::clone(&db), DoraConfig::for_tests());
        workload.bind_dora(&engine, 2).unwrap();
        let program = workload.new_order_program(&db, 1, 1, 1, bad_items).unwrap();
        assert!(engine.execute(program.compile_dora()).is_err());
        // District order counter must not have advanced permanently: both
        // attempts rolled back, so it still holds the loader's initial value
        // (one historical order per customer).
        let tables = workload.tables(&db).unwrap();
        let check = db.begin();
        let (_, district) = db
            .probe_primary(
                &check,
                tables.district,
                &Key::int2(1, 1),
                false,
                CcMode::Full,
            )
            .unwrap()
            .unwrap();
        assert_eq!(district[4], Value::Int(31));
        db.commit(&check).unwrap();
        engine.shutdown();
    }

    #[test]
    fn payment_by_last_name_uses_secondary_index() {
        let (db, workload) = small_tpcc();
        // Customer 7's last name under the loader's naming scheme.
        let last = c_last(7);
        let program = workload
            .payment_program(&db, 1, 1, 1, 1, CustomerSelector::ByLastName(last), 25.0)
            .unwrap();
        assert_eq!(
            run_baseline_once(&db, program).unwrap(),
            BaselineOutcome::Committed
        );
    }

    #[test]
    fn full_mix_runs_on_both_engines() {
        let (db, workload) = small_tpcc();
        let mut rng = SmallRng::seed_from_u64(77);
        let mut baseline_committed = 0;
        for _ in 0..60 {
            if run_baseline_mix(&workload, &db, &mut rng) == TxnOutcome::Committed {
                baseline_committed += 1;
            }
        }
        assert!(
            baseline_committed > 30,
            "baseline committed only {baseline_committed}/60"
        );

        let engine = DoraEngine::new(Arc::clone(&db), DoraConfig::for_tests());
        workload.bind_dora(&engine, 2).unwrap();
        let mut dora_committed = 0;
        for _ in 0..60 {
            if run_dora_mix(&workload, &engine, &mut rng) == TxnOutcome::Committed {
                dora_committed += 1;
            }
        }
        assert!(
            dora_committed > 30,
            "DORA committed only {dora_committed}/60"
        );
        engine.shutdown();
    }
}
