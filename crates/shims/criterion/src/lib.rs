//! Offline shim for the subset of `criterion` this workspace's benches use.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. This shim is a small but genuine measurement harness: each
//! `bench_function` warms up, then runs timed samples for the configured
//! measurement time and prints the per-iteration mean, min and max. It has
//! none of criterion's statistics (outlier analysis, regressions, plots) —
//! it exists so `cargo bench` builds, runs and produces usable numbers.

use std::time::{Duration, Instant};

/// Measurement configuration and entry point, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 50,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the total time spent taking timed samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(id);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// No-op in the shim (criterion finalizes reports here).
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples: Vec<(u64, Duration)>,
}

impl Bencher {
    /// Times repeated executions of `routine`.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm up and size the per-sample batch so one sample is long enough
        // to time accurately but the whole run respects measurement_time.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));
        let budget_per_sample = self.measurement_time.as_nanos() / self.sample_size.max(1) as u128;
        let batch = (budget_per_sample / per_iter.max(1)).clamp(1, u128::from(u32::MAX)) as u64;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.samples.push((batch, start.elapsed()));
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<50} (no samples)");
            return;
        }
        let per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|(iters, elapsed)| elapsed.as_nanos() as f64 / *iters as f64)
            .collect();
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = per_iter.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{id:<50} time: [{} {} {}]",
            format_ns(min),
            format_ns(mean),
            format_ns(max)
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Re-export used by downstream code written against criterion's
/// `black_box` (the shim delegates to `std::hint`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` function, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        let mut counter = 0u64;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| {
                counter += 1;
                counter
            })
        });
        assert!(counter > 0, "the routine must actually have run");
    }

    #[test]
    fn groups_prefix_names() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        let mut group = c.benchmark_group("group");
        group.bench_function("inner", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn format_ns_picks_sensible_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(12_000_000_000.0).ends_with(" s"));
    }
}
