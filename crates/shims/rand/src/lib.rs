//! Offline shim for the subset of `rand` 0.9 this workspace uses.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. The shim mirrors the pieces the workspace calls: the [`RngCore`]
//! / [`Rng`] / [`SeedableRng`] traits, `Rng::random_range` over integer
//! ranges, and [`rngs::SmallRng`] implemented as xoshiro256++ seeded through
//! SplitMix64 — the same algorithm the real `SmallRng` uses on 64-bit
//! platforms, so the statistical quality is equivalent (though streams are
//! not guaranteed bit-identical to upstream).

/// The core of a random number generator.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`low..high` or `low..=high`).
    ///
    /// Panics if the range is empty, like the real crate.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 random mantissa bits -> uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A random number generator that can be seeded deterministically.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (stretched internally).
    fn seed_from_u64(state: u64) -> Self;
}

/// A range that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` via the widening-multiply method.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($ty:ty),+) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $ty)
            }
        }
        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "cannot sample empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full 64-bit domain.
                    return rng.next_u64() as $ty;
                }
                low.wrapping_add(uniform_below(rng, span as u64) as $ty)
            }
        }
    )+};
}

impl_sample_range_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic PRNG: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn from_splitmix(mut state: u64) -> Self {
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            Self::from_splitmix(state)
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn random_range_honors_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: i64 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&v));
            let u: usize = rng.random_range(0..10);
            assert!(u < 10);
            let w: u32 = rng.random_range(0..100);
            assert!(w < 100);
        }
    }

    #[test]
    fn random_range_covers_the_domain() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.random_range(0..10usize)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all 10 values should appear in 1000 draws"
        );
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _: i64 = rng.random_range(5..5);
    }

    #[test]
    fn fill_bytes_fills_every_length() {
        let mut rng = SmallRng::seed_from_u64(3);
        for len in 0..20 {
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            if len >= 8 {
                assert!(
                    buf.iter().any(|&b| b != 0),
                    "8+ random bytes should not all be zero"
                );
            }
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "25% gave {hits}/10000");
    }
}
