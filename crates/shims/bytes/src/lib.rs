//! Offline shim for the subset of the `bytes` crate this workspace uses.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. [`Bytes`] is a cheaply-cloneable view over shared immutable
//! storage (`Arc<[u8]>` plus a window), [`BytesMut`] a growable buffer that
//! freezes into one, and [`Buf`]/[`BufMut`] provide the little-endian
//! cursor-style accessors the record format uses.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply-cloneable, sliceable chunk of immutable bytes.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies `slice` into a new `Bytes`.
    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Self::from(slice.to_vec())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Splits off and returns the first `at` bytes, advancing `self` past
    /// them. Both views keep sharing the same underlying storage.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Copies the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Self {
            data: data.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(slice: &[u8]) -> Self {
        Self::copy_from_slice(slice)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({:?})", self.as_slice())
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Default, Clone)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with at least `capacity` bytes reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Length of the buffered data.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Cursor-style read access to a byte buffer.
pub trait Buf {
    /// Bytes remaining to be read.
    fn remaining(&self) -> usize;

    /// The unread portion of the buffer.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Copies `dst.len()` bytes out of the buffer, advancing past them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

/// Append-style write access to a byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_bits().to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_accessors() {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(7);
        buf.put_u16_le(300);
        buf.put_u32_le(70_000);
        buf.put_i64_le(-42);
        buf.put_f64_le(3.5);
        buf.put_slice(b"tail");
        let mut bytes = buf.freeze();
        assert_eq!(bytes.remaining(), 1 + 2 + 4 + 8 + 8 + 4);
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.get_u16_le(), 300);
        assert_eq!(bytes.get_u32_le(), 70_000);
        assert_eq!(bytes.get_i64_le(), -42);
        assert_eq!(bytes.get_f64_le(), 3.5);
        assert_eq!(bytes.as_ref(), b"tail");
    }

    #[test]
    fn split_to_shares_storage_and_advances() {
        let mut bytes = Bytes::copy_from_slice(b"hello world");
        let head = bytes.split_to(5);
        assert_eq!(head.as_ref(), b"hello");
        assert_eq!(bytes.as_ref(), b" world");
        assert_eq!(head.to_vec(), b"hello".to_vec());
    }

    #[test]
    fn deref_supports_slicing() {
        let bytes = Bytes::copy_from_slice(b"abcdef");
        assert_eq!(&bytes[..3], b"abc");
        assert_eq!(bytes.len(), 6);
        assert!(!bytes.is_empty());
    }

    #[test]
    fn clone_is_a_view() {
        let bytes = Bytes::copy_from_slice(b"shared");
        let clone = bytes.clone();
        assert_eq!(bytes, clone);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn reading_past_the_end_panics() {
        let mut bytes = Bytes::copy_from_slice(&[1]);
        let _ = bytes.get_u32_le();
    }
}
