//! Offline shim for the subset of `parking_lot` this workspace uses.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. This shim wraps `std::sync` primitives behind `parking_lot`'s
//! non-poisoning API: `lock()`/`read()`/`write()` return guards directly and
//! a panicked holder never poisons the lock (we recover the inner guard).
//!
//! Non-poisoning is a deliberate workspace-wide decision, not a convenience:
//! the executor-supervision layer (`dora-core`/`dora-engine`) catches panics
//! at action boundaries and *quarantines the transaction*, then keeps the
//! worker thread serving. Under `std`'s poisoning semantics, a caught panic
//! that had briefly held any shared storage lock (lock-manager shards, log
//! queues, buffer-pool latches) would wedge every later `unwrap()` on that
//! lock — turning one supervised, rolled-back transaction into a
//! process-wide outage. Data integrity across such a panic is instead
//! guaranteed by the transactional machinery itself (undo via the per-txn
//! log chain), which is strictly stronger than poisoning's "taint everything
//! the panicking thread could see" heuristic. The audit rule for the
//! workspace: every shared-state lock goes through this shim (no raw
//! `std::sync::Mutex`/`RwLock` outside it), so there is no poisoned-lock
//! `unwrap()` to get wrong. `poisoned_lock_recovers` below pins the recovery
//! behavior.
//!
//! Only the API surface the workspace actually calls is provided; extend it
//! here if new call sites need more.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutual exclusion primitive (non-poisoning `lock()` API).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard for [`Mutex`].
///
/// The inner std guard lives in an `Option` so [`Condvar`] can temporarily
/// take it while waiting and put the reacquired guard back.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Outcome of a [`Condvar::wait_for`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with this module's [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guarded mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let reacquired = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(reacquired);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present");
        let (reacquired, result) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(reacquired);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

/// A reader-writer lock (non-poisoning `read()`/`write()` API).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Returns a mutable reference to the underlying data (no locking).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cvar.wait(&mut ready);
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        let (lock, cvar) = &*pair;
        *lock.lock() = true;
        cvar.notify_all();
        waiter.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut guard = m.lock();
        let result = cv.wait_for(&mut guard, Duration::from_millis(10));
        assert!(result.timed_out());
    }

    #[test]
    fn rwlock_allows_parallel_readers() {
        let l = RwLock::new(7);
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 14);
        drop((r1, r2));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(5));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 5, "shim must not propagate poisoning");
    }
}
