//! End-to-end single-transaction latency for every registered execution
//! engine, for the transactions Figure 7 reports. Criterion gives the
//! per-transaction view; the `repro fig7` harness reports the normalized
//! comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;

use dora_common::EngineKind;
use dora_engine::build_engine;
use dora_storage::Database;
use dora_workloads::{Tm1, Tm1Mix, TpcB, Tpcc, TpccMix, Workload};

fn bench_workload(c: &mut Criterion, name: &str, make: impl Fn() -> Box<dyn Workload>) {
    let mut group = c.benchmark_group(name);
    for kind in EngineKind::ALL {
        let db = Database::for_tests();
        let workload: Arc<dyn Workload> = Arc::from(make());
        workload.setup(&db).unwrap();
        let engine = build_engine(kind, db);
        engine.bind(workload, 2).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        group.bench_function(kind.label(), |b| {
            b.iter(|| engine.execute_one(&mut rng));
        });
        engine.shutdown();
    }
    group.finish();
}

fn transaction_latency(c: &mut Criterion) {
    bench_workload(c, "tm1_get_subscriber_data", || {
        Box::new(Tm1::new(1_000).with_mix(Tm1Mix::GetSubscriberDataOnly))
    });
    bench_workload(c, "tpcc_payment", || {
        Box::new(Tpcc::with_scale(2, 60, 100).with_mix(TpccMix::PaymentOnly))
    });
    bench_workload(c, "tpcc_new_order", || {
        Box::new(Tpcc::with_scale(2, 60, 100).with_mix(TpccMix::NewOrderOnly))
    });
    bench_workload(c, "tpcb_account_update", || {
        Box::new(TpcB::with_accounts(4, 100))
    });
}

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = configure();
    targets = transaction_latency
}
criterion_main!(benches);
