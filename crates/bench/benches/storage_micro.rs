//! Storage-substrate micro-benchmarks: B-Tree probes, heap access and log
//! appends. These bound the "Work" component of the time breakdowns and help
//! interpret the figure reproductions on a new host.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use dora_common::prelude::*;
use dora_storage::btree::{BTreeIndex, IndexEntry};
use dora_storage::{ColumnDef, Database, TableSchema};

fn btree_probe(c: &mut Criterion) {
    let index = BTreeIndex::new(true);
    let n = 100_000i64;
    for i in 0..n {
        index
            .insert(
                &Key::int(i),
                IndexEntry::new(Rid::new((i / 100) as u32, (i % 100) as u16), Key::empty()),
            )
            .unwrap();
    }
    let mut probe = 0i64;
    c.bench_function("storage/btree_probe_100k", |b| {
        b.iter(|| {
            probe = (probe * 48271 + 1) % n;
            black_box(index.get(&Key::int(probe)));
        })
    });
}

fn heap_insert_and_read(c: &mut Criterion) {
    let db = Database::for_tests();
    let table = db
        .create_table(TableSchema::new(
            "points",
            vec![
                ColumnDef::new("id", ValueType::Int),
                ColumnDef::new("payload", ValueType::Text),
            ],
            vec![0],
        ))
        .unwrap();
    let mut next = 0i64;
    c.bench_function("storage/insert_commit", |b| {
        b.iter(|| {
            next += 1;
            let txn = db.begin();
            db.insert(
                &txn,
                table,
                vec![
                    Value::Int(next),
                    Value::Text("payload-payload-payload".into()),
                ],
                CcMode::Full,
            )
            .unwrap();
            db.commit(&txn).unwrap();
        })
    });

    let db = Arc::new(Database::for_tests());
    let table = db
        .create_table(TableSchema::new(
            "lookup",
            vec![
                ColumnDef::new("id", ValueType::Int),
                ColumnDef::new("v", ValueType::Int),
            ],
            vec![0],
        ))
        .unwrap();
    for i in 0..10_000i64 {
        db.load_row(table, vec![Value::Int(i), Value::Int(i * 2)])
            .unwrap();
    }
    let mut probe = 0i64;
    c.bench_function("storage/probe_primary_full_cc", |b| {
        b.iter(|| {
            probe = (probe + 7919) % 10_000;
            let txn = db.begin();
            black_box(
                db.probe_primary(&txn, table, &Key::int(probe), false, CcMode::Full)
                    .unwrap(),
            );
            db.commit(&txn).unwrap();
        })
    });
    let mut probe = 0i64;
    c.bench_function("storage/probe_primary_no_cc", |b| {
        b.iter(|| {
            probe = (probe + 7919) % 10_000;
            let txn = db.begin();
            black_box(
                db.probe_primary(&txn, table, &Key::int(probe), false, CcMode::None)
                    .unwrap(),
            );
            db.commit(&txn).unwrap();
        })
    });
}

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(30)
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = configure();
    targets = btree_probe, heap_insert_and_read
}
criterion_main!(benches);
