//! Micro-benchmarks for the ablation DESIGN.md calls out: the cost of a
//! centralized lock-manager acquisition (with and without the intention-lock
//! hierarchy) versus a DORA thread-local lock-table acquisition. This is the
//! per-operation view behind Figure 5: DORA replaces most centralized
//! acquisitions with far cheaper local ones.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dora_common::prelude::*;
use dora_core::locallock::LocalLockTable;
use dora_core::LocalMode;
use dora_storage::lock::{HeldLocks, LockId, LockManager, LockMode};

fn centralized_record_lock_full_hierarchy(c: &mut Criterion) {
    let manager = LockManager::new(true);
    let table = TableId(1);
    let mut txn_counter = 0u64;
    c.bench_function("lockmgr/record_lock_with_hierarchy", |b| {
        b.iter(|| {
            txn_counter += 1;
            let txn = TxnId(txn_counter);
            let mut held = HeldLocks::new();
            manager
                .acquire(txn, &mut held, LockId::Database, LockMode::IX)
                .unwrap();
            manager
                .acquire(txn, &mut held, LockId::Table(table), LockMode::IX)
                .unwrap();
            manager
                .acquire(
                    txn,
                    &mut held,
                    LockId::record(table, Rid::new((txn_counter % 1024) as u32, 1)),
                    LockMode::X,
                )
                .unwrap();
            manager.release_all(txn, held);
        })
    });
}

fn centralized_record_lock_row_only(c: &mut Criterion) {
    let manager = LockManager::new(true);
    let table = TableId(1);
    let mut txn_counter = 0u64;
    c.bench_function("lockmgr/record_lock_row_only", |b| {
        b.iter(|| {
            txn_counter += 1;
            let txn = TxnId(txn_counter);
            let mut held = HeldLocks::new();
            manager
                .acquire(
                    txn,
                    &mut held,
                    LockId::record(table, Rid::new((txn_counter % 1024) as u32, 1)),
                    LockMode::X,
                )
                .unwrap();
            manager.release_all(txn, held);
        })
    });
}

fn dora_local_lock(c: &mut Criterion) {
    let mut table = LocalLockTable::new();
    let mut txn_counter = 0u64;
    c.bench_function("dora/local_lock_acquire_release", |b| {
        b.iter(|| {
            txn_counter += 1;
            let txn = TxnId(txn_counter);
            let key = Key::int((txn_counter % 1024) as i64);
            black_box(table.acquire(txn, &key, LocalMode::Exclusive));
            table.release_txn(txn);
        })
    });
}

fn contended_table_lock(c: &mut Criterion) {
    // The hot higher-level lock every conventional transaction touches: the
    // table intention lock. Measured un-contended here; the repro harness
    // measures the contended behaviour (Figures 1-3).
    let manager = LockManager::new(true);
    let table = TableId(7);
    let mut txn_counter = 0u64;
    c.bench_function("lockmgr/table_intention_lock", |b| {
        b.iter(|| {
            txn_counter += 1;
            let txn = TxnId(txn_counter);
            let mut held = HeldLocks::new();
            manager
                .acquire(txn, &mut held, LockId::Table(table), LockMode::IX)
                .unwrap();
            manager.release_all(txn, held);
        })
    });
}

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(30)
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = configure();
    targets = centralized_record_lock_full_hierarchy,
              centralized_record_lock_row_only,
              dora_local_lock,
              contended_table_lock
}
criterion_main!(benches);
