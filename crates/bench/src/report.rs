//! Plain-text report rendering.

use std::fmt::Write as _;

/// A small line-oriented report builder. Every experiment produces one; the
/// `repro` binary prints it and optionally appends it to a results file.
#[derive(Debug, Default, Clone)]
pub struct Report {
    title: String,
    lines: Vec<String>,
}

impl Report {
    /// Creates a report with a title.
    pub fn new(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            lines: Vec::new(),
        }
    }

    /// The report title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Appends one line.
    pub fn line(&mut self, line: impl Into<String>) -> &mut Self {
        self.lines.push(line.into());
        self
    }

    /// Appends a blank line.
    pub fn blank(&mut self) -> &mut Self {
        self.lines.push(String::new());
        self
    }

    /// Appends a formatted key/value row.
    pub fn kv(&mut self, key: &str, value: impl std::fmt::Display) -> &mut Self {
        self.lines.push(format!("  {key:<42} {value}"));
        self
    }

    /// Number of content lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// `true` if the report has no lines.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Renders the report to a string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let bar = "=".repeat(self.title.len().max(8));
        let _ = writeln!(out, "{bar}\n{}\n{bar}", self.title);
        for line in &self.lines {
            let _ = writeln!(out, "{line}");
        }
        out
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a fraction as a percent with one decimal.
pub fn pct(fraction: f64) -> String {
    format!("{:5.1}%", 100.0 * fraction)
}

/// Appends the pg_meter-style per-transaction-type summary table: one row
/// per transaction type of the mix with its commits, aborts, retry
/// exhaustions, error rate and mean/p99 response time.
pub fn txn_stats_table(report: &mut Report, stats: &dora_workloads::WorkloadStats) {
    report.line(format!(
        "    {:<28} {:>9} {:>8} {:>8} {:>7} {:>10} {:>10}",
        "transaction type", "commits", "aborts", "gave-up", "err%", "mean(us)", "p99(us)"
    ));
    for (label, row) in stats.all_stats() {
        report.line(format!(
            "    {:<28} {:>9} {:>8} {:>8} {:>6.1}% {:>10} {:>10}",
            label,
            row.counts.committed,
            row.counts.aborted,
            row.counts.gave_up,
            100.0 * row.error_rate(),
            row.latency.mean().as_micros(),
            row.latency.percentile(0.99).as_micros(),
        ));
    }
}

/// Formats a stacked time-breakdown row the way the paper's figures label it.
pub fn breakdown_row(label: &str, breakdown: &dora_metrics::TimeBreakdown) -> String {
    format!(
        "  {label:<28} work {} | lockmgr-cont {} | lockmgr {} | other-cont {}",
        pct(breakdown.work_fraction()),
        pct(breakdown.lock_mgr_contention_fraction()),
        pct(breakdown.lock_mgr_work_fraction()),
        pct(breakdown.other_contention_fraction()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_title_and_lines() {
        let mut report = Report::new("Figure 1");
        report.line("hello").kv("throughput", 123.4).blank();
        let text = report.render();
        assert!(text.contains("Figure 1"));
        assert!(text.contains("hello"));
        assert!(text.contains("throughput"));
        assert_eq!(report.len(), 3);
        assert!(!report.is_empty());
    }

    #[test]
    fn pct_formats_fractions() {
        assert_eq!(pct(0.5), " 50.0%");
        assert_eq!(pct(1.0), "100.0%");
    }

    #[test]
    fn txn_stats_table_renders_one_row_per_type() {
        use dora_common::TxnOutcome;
        use std::time::Duration;

        let stats = dora_workloads::WorkloadStats::new();
        stats.record_timed("payment", TxnOutcome::Committed, Duration::from_micros(120));
        stats.record_timed("payment", TxnOutcome::Aborted, Duration::from_micros(80));
        stats.record_timed(
            "new-order",
            TxnOutcome::Committed,
            Duration::from_micros(400),
        );
        let mut report = Report::new("per-type");
        txn_stats_table(&mut report, &stats);
        let text = report.render();
        assert!(text.contains("transaction type"), "{text}");
        assert!(text.contains("payment"), "{text}");
        assert!(text.contains("new-order"), "{text}");
        assert!(text.contains("50.0%"), "{text}");
    }
}
