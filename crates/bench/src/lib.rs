//! The benchmark harness.
//!
//! [`experiments`] contains one function per figure of the paper's
//! evaluation; each sets up the workload, drives both engines with the
//! closed-loop [`dora_engine::ClientDriver`], and renders a plain-text report
//! with the same rows/series the figure plots. The `repro` binary exposes
//! them as subcommands (`cargo run -p dora-bench --release --bin repro --
//! fig1`), and `EXPERIMENTS.md` records paper-vs-measured for each.
//!
//! [`setup`] holds the shared scaffolding (database construction, workload
//! scaling, run helpers) and [`trace`] the access-pattern tracing used for
//! Figure 10.

pub mod experiments;
pub mod report;
pub mod setup;
pub mod trace;

pub use report::Report;
pub use setup::{Scale, SystemUnderTest};
