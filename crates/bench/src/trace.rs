//! Access-pattern tracing for Figure 10.
//!
//! Figure 10 of the paper plots, over ~0.7 s of TPC-C Payment execution on a
//! 10-warehouse database, which worker thread touches which District record
//! at each point in time: under thread-to-transaction assignment the accesses
//! are uncoordinated (any thread touches any district), under thread-to-data
//! they form clean per-executor bands.
//!
//! The tracer records `(elapsed, thread, district)` triples. For the baseline
//! the recording thread is the client/worker thread that executes the
//! transaction; for DORA the recorded "thread" is the executor the routing
//! rule assigns the district's dataset to — which is, by construction, the
//! thread that performs the access.

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// One recorded access.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessEvent {
    /// Time since the trace started.
    pub elapsed: Duration,
    /// Index of the thread (worker or executor) performing the access.
    pub thread: usize,
    /// Global district index (`(w_id - 1) * 10 + d_id`).
    pub district: usize,
}

/// A concurrent trace collector.
#[derive(Debug, Clone)]
pub struct AccessTrace {
    started: Instant,
    events: Arc<Mutex<Vec<AccessEvent>>>,
}

impl Default for AccessTrace {
    fn default() -> Self {
        Self::new()
    }
}

impl AccessTrace {
    /// Starts an empty trace.
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            events: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Records one access.
    pub fn record(&self, thread: usize, district: usize) {
        let event = AccessEvent {
            elapsed: self.started.elapsed(),
            thread,
            district,
        };
        self.events.lock().push(event);
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the recorded events.
    pub fn events(&self) -> Vec<AccessEvent> {
        self.events.lock().clone()
    }

    /// Builds the threads × districts access-count matrix.
    pub fn matrix(&self, threads: usize, districts: usize) -> Vec<Vec<u64>> {
        let mut matrix = vec![vec![0u64; districts]; threads];
        for event in self.events.lock().iter() {
            if event.thread < threads && event.district < districts {
                matrix[event.thread][event.district] += 1;
            }
        }
        matrix
    }

    /// For each thread, the number of *distinct* districts it touched. The
    /// paper's qualitative claim is that this is ~all districts for the
    /// conventional system and a small disjoint subset for DORA.
    pub fn distinct_districts_per_thread(&self, threads: usize, districts: usize) -> Vec<usize> {
        self.matrix(threads, districts)
            .iter()
            .map(|row| row.iter().filter(|&&count| count > 0).count())
            .collect()
    }

    /// Renders a compact ASCII heat map (one row per thread, one column per
    /// district, '.' for zero and digits/'#' for increasing counts).
    pub fn render_heatmap(&self, threads: usize, districts: usize) -> String {
        let matrix = self.matrix(threads, districts);
        let mut out = String::new();
        for (thread, row) in matrix.iter().enumerate() {
            out.push_str(&format!("    thread {thread:>2} |"));
            for &count in row {
                let symbol = match count {
                    0 => '.',
                    1..=4 => '+',
                    5..=24 => 'o',
                    _ => '#',
                };
                out.push(symbol);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarizes_accesses() {
        let trace = AccessTrace::new();
        trace.record(0, 1);
        trace.record(0, 1);
        trace.record(1, 5);
        assert_eq!(trace.len(), 3);
        let matrix = trace.matrix(2, 10);
        assert_eq!(matrix[0][1], 2);
        assert_eq!(matrix[1][5], 1);
        assert_eq!(trace.distinct_districts_per_thread(2, 10), vec![1, 1]);
        let heatmap = trace.render_heatmap(2, 10);
        assert!(heatmap.contains("thread  0"));
        assert!(heatmap.contains('+'));
    }

    #[test]
    fn banded_vs_uncoordinated_patterns_are_distinguishable() {
        // Simulate DORA-style banding: thread t touches only districts
        // [10t, 10t+10).
        let banded = AccessTrace::new();
        for t in 0..4 {
            for d in 0..10 {
                for _ in 0..5 {
                    banded.record(t, t * 10 + d);
                }
            }
        }
        // Conventional: every thread touches every district.
        let uncoordinated = AccessTrace::new();
        for t in 0..4 {
            for d in 0..40 {
                uncoordinated.record(t, d);
            }
        }
        let banded_distinct = banded.distinct_districts_per_thread(4, 40);
        let uncoordinated_distinct = uncoordinated.distinct_districts_per_thread(4, 40);
        assert!(banded_distinct.iter().all(|&d| d == 10));
        assert!(uncoordinated_distinct.iter().all(|&d| d == 40));
    }
}
