//! One function per figure of the paper's evaluation (Section 5 and the
//! appendix). Each sets up the workloads at the requested [`Scale`], drives
//! the baseline and/or DORA engines, and renders the measured series as a
//! plain-text [`Report`]. `EXPERIMENTS.md` records how each measured shape
//! compares to the paper's.

use std::sync::Arc;
use std::time::Instant;

use dora_common::config::AdaptiveConfig;
use dora_common::prelude::*;
use dora_core::{DoraConfig, DoraEngine};
use dora_engine::{
    build_engine, find_peak, BaselineEngine, ClientDriver, DoraExecution, DriverConfig,
    ExecutionEngine,
};
use dora_metrics::CounterKind;
use dora_storage::Database;
use dora_workloads::{Tm1Mix, Tpcc, TpccMix, Workload};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::report::{breakdown_row, pct, Report};
use crate::setup::{prepare, run_clients, sweep, Scale, SystemUnderTest};
use crate::trace::AccessTrace;

/// Figure 1: TM1-GetSubscriberData — throughput per CPU utilization as the
/// load grows, plus the time breakdown of each system.
pub fn fig1(scale: &Scale) -> Report {
    let mut report = Report::new("Figure 1: TM1-GetSubscriberData, Baseline vs DORA");
    for system in SystemUnderTest::ALL {
        report.line(format!("{}:", system.label()));
        let workload = scale.tm1().with_mix(Tm1Mix::GetSubscriberDataOnly);
        let results = sweep(workload, scale, system, &scale.load_points());
        report.line(format!(
            "  {:>10} {:>10} {:>14} {:>16}",
            "load(%)", "cpu(%)", "tps", "tps/cpu-util"
        ));
        for (load, result) in &results {
            report.line(format!(
                "  {:>10.0} {:>10.1} {:>14.0} {:>16.2}",
                load,
                result.cpu_utilization_percent.unwrap_or(*load),
                result.throughput_tps,
                result.throughput_per_cpu_util(),
            ));
        }
        report.line("  time breakdown:");
        for (load, result) in &results {
            report.line(breakdown_row(
                &format!("@{load:.0}% offered"),
                &result.breakdown,
            ));
        }
        report.blank();
    }
    report
}

/// Figure 2: time breakdown at full utilization for (a) the TM1 mix and
/// (b) TPC-C OrderStatus, Baseline vs DORA.
pub fn fig2(scale: &Scale) -> Report {
    let mut report = Report::new("Figure 2: time breakdown at 100% CPU utilization");
    for (label, which) in [("TM1 (full mix)", 0), ("TPC-C OrderStatus", 1)] {
        report.line(format!("{label}:"));
        for system in SystemUnderTest::ALL {
            let results = if which == 0 {
                sweep(scale.tm1(), scale, system, &[100.0])
            } else {
                sweep(
                    scale.tpcc().with_mix(TpccMix::OrderStatusOnly),
                    scale,
                    system,
                    &[100.0],
                )
            };
            let (_, result) = &results[0];
            report.line(breakdown_row(system.label(), &result.breakdown));
        }
        report.blank();
    }
    report
}

/// Figure 3: where the time inside the centralized lock manager goes for the
/// baseline running TPC-B, as the load grows.
pub fn fig3(scale: &Scale) -> Report {
    let mut report = Report::new("Figure 3: inside the lock manager (Baseline, TPC-B)");
    let results = sweep(
        scale.tpcb(),
        scale,
        SystemUnderTest::Baseline,
        &scale.load_points(),
    );
    report.line(format!(
        "  {:>10} {:>10} {:>12} {:>10} {:>12} {:>10}",
        "load(%)", "acquire", "acquire-cont", "release", "release-cont", "other"
    ));
    for (load, result) in &results {
        let breakdown = &result.breakdown;
        let total = (breakdown.lock_mgr_acquire_nanos
            + breakdown.lock_mgr_acquire_cont_nanos
            + breakdown.lock_mgr_release_nanos
            + breakdown.lock_mgr_release_cont_nanos
            + breakdown.lock_mgr_other_nanos)
            .max(1) as f64;
        report.line(format!(
            "  {:>10.0} {:>10} {:>12} {:>10} {:>12} {:>10}",
            load,
            pct(breakdown.lock_mgr_acquire_nanos as f64 / total),
            pct(breakdown.lock_mgr_acquire_cont_nanos as f64 / total),
            pct(breakdown.lock_mgr_release_nanos as f64 / total),
            pct(breakdown.lock_mgr_release_cont_nanos as f64 / total),
            pct(breakdown.lock_mgr_other_nanos as f64 / total),
        ));
    }
    report.blank();
    report.line("  contention share of lock-manager time:");
    for (load, result) in &results {
        report.kv(
            &format!("@{load:.0}% offered load"),
            pct(result.breakdown.lock_mgr_internal_contention_fraction()),
        );
    }
    report
}

/// Figure 4: the transaction flow graph of TPC-C Payment (structural, not a
/// measurement).
pub fn fig4(scale: &Scale) -> Report {
    let mut report = Report::new("Figure 4: transaction flow graph of TPC-C Payment");
    let db = Database::new(scale.system_config());
    let tpcc = scale.tpcc();
    tpcc.setup(&db).expect("setup TPC-C");
    let graph = tpcc
        .payment_program(
            &db,
            1,
            1,
            1,
            1,
            dora_workloads::tpcc::CustomerSelector::ById(1),
            10.0,
        )
        .expect("payment program")
        .compile_dora();
    for (index, phase) in graph.describe().iter().enumerate() {
        report.line(format!("  phase {}: {}", index + 1, phase.join(", ")));
        if index + 1 < graph.phase_count() {
            report.line(format!("  --- RVP{} ---", index + 1));
        }
    }
    report.line(format!(
        "  --- RVP{} (terminal: commit) ---",
        graph.phase_count()
    ));
    report
}

/// Figure 5: locks acquired per 100 transactions, by class, for TM1, TPC-B
/// and TPC-C OrderStatus under both systems.
pub fn fig5(scale: &Scale) -> Report {
    let mut report = Report::new("Figure 5: locks acquired per 100 transactions");
    report.line(format!(
        "  {:<26} {:<10} {:>12} {:>14} {:>14}",
        "workload", "system", "row-level", "higher-level", "thread-local"
    ));
    let load = [75.0];
    for which in 0..3 {
        for system in SystemUnderTest::ALL {
            let (name, results) = match which {
                0 => ("TM1", sweep(scale.tm1(), scale, system, &load)),
                1 => ("TPC-B", sweep(scale.tpcb(), scale, system, &load)),
                _ => (
                    "TPC-C OrderStatus",
                    sweep(
                        scale.tpcc().with_mix(TpccMix::OrderStatusOnly),
                        scale,
                        system,
                        &load,
                    ),
                ),
            };
            let (_, result) = &results[0];
            let (row, higher, local) = result.locks_per_100_txns();
            report.line(format!(
                "  {:<26} {:<10} {:>12.0} {:>14.0} {:>14.0}",
                name,
                system.label(),
                row,
                higher,
                local
            ));
        }
    }
    report
}

/// Figure 6: throughput as the offered CPU load grows (including past
/// saturation) for TM1, TPC-B and TPC-C OrderStatus.
pub fn fig6(scale: &Scale) -> Report {
    let mut report = Report::new("Figure 6: throughput vs offered CPU load");
    for which in 0..3 {
        let name = ["TM1", "TPC-B", "TPC-C OrderStatus"][which];
        report.line(format!("{name}:"));
        report.line(format!(
            "  {:>10} {:>16} {:>16}",
            "load(%)", "Baseline tps", "DORA tps"
        ));
        let mut series: Vec<Vec<(f64, f64)>> = Vec::new();
        for system in SystemUnderTest::ALL {
            let results = match which {
                0 => sweep(scale.tm1(), scale, system, &scale.load_points()),
                1 => sweep(scale.tpcb(), scale, system, &scale.load_points()),
                _ => sweep(
                    scale.tpcc().with_mix(TpccMix::OrderStatusOnly),
                    scale,
                    system,
                    &scale.load_points(),
                ),
            };
            series.push(
                results
                    .iter()
                    .map(|(load, r)| (*load, r.throughput_tps))
                    .collect(),
            );
        }
        for (index, load) in scale.load_points().iter().enumerate() {
            report.line(format!(
                "  {:>10.0} {:>16.0} {:>16.0}",
                load, series[0][index].1, series[1][index].1
            ));
        }
        report.blank();
    }
    report
}

/// Figure 7: single-client response times (intra-transaction parallelism).
pub fn fig7(scale: &Scale) -> Report {
    let mut report = Report::new("Figure 7: single-client response time (normalized to Baseline)");
    report.line(format!(
        "  {:<26} {:>16} {:>16} {:>12}",
        "transaction", "Baseline (us)", "DORA (us)", "DORA/Base"
    ));
    let iterations = if scale.duration.as_millis() > 500 {
        400
    } else {
        100
    };

    // (label, workload constructor shared by every engine)
    type WorkloadFactory = Box<dyn Fn() -> Box<dyn Workload>>;
    let cases: Vec<(&str, WorkloadFactory)> = vec![
        (
            "TM1 GetSubscriberData",
            Box::new({
                let scale = scale.clone();
                move || Box::new(scale.tm1().with_mix(Tm1Mix::GetSubscriberDataOnly))
            }),
        ),
        (
            "TPC-C Payment",
            Box::new({
                let scale = scale.clone();
                move || Box::new(scale.tpcc().with_mix(TpccMix::PaymentOnly))
            }),
        ),
        (
            "TPC-C OrderStatus",
            Box::new({
                let scale = scale.clone();
                move || Box::new(scale.tpcc().with_mix(TpccMix::OrderStatusOnly))
            }),
        ),
        (
            "TPC-C NewOrder",
            Box::new({
                let scale = scale.clone();
                move || Box::new(scale.tpcc().with_mix(TpccMix::NewOrderOnly))
            }),
        ),
        (
            "TPC-B",
            Box::new({
                let scale = scale.clone();
                move || Box::new(scale.tpcb())
            }),
        ),
    ];

    for (label, make) in cases {
        let driver = ClientDriver::new(DriverConfig {
            clients: 1,
            duration: scale.duration,
            warmup: scale.warmup,
            hardware_contexts: scale.hardware_contexts,
        });
        // One fresh database + bound engine per registered architecture; the
        // measurement itself goes through the unified ExecutionEngine seam.
        let mean_us: Vec<f64> = SystemUnderTest::ALL
            .into_iter()
            .map(|system| {
                let db = Database::new(scale.system_config());
                let workload: Arc<dyn Workload> = Arc::from(make());
                workload.setup(&db).expect("setup");
                let engine = build_engine(system, Arc::clone(&db));
                engine
                    .bind(workload, scale.executors_per_table)
                    .expect("bind");
                let latency = driver.measure_engine(iterations, engine.as_ref());
                engine.shutdown();
                latency.mean().as_micros() as f64
            })
            .collect();

        let base_us = mean_us[0];
        let dora_us = mean_us[mean_us.len() - 1];
        report.line(format!(
            "  {:<26} {:>16.0} {:>16.0} {:>12.2}",
            label,
            base_us,
            dora_us,
            dora_us / base_us.max(1.0)
        ));
    }
    report
}

/// Figure 8: peak throughput under perfect admission control, with the CPU
/// utilization at which the peak is reached.
pub fn fig8(scale: &Scale) -> Report {
    let mut report = Report::new("Figure 8: peak throughput under perfect admission control");
    report.line(format!(
        "  {:<26} {:<10} {:>12} {:>14} {:>18}",
        "workload", "system", "peak tps", "norm. to base", "cpu util at peak"
    ));
    for which in 0..3 {
        let name = ["TM1", "TPC-B", "TPC-C OrderStatus"][which];
        let mut base_peak = 0.0;
        for system in SystemUnderTest::ALL {
            let prepared = match which {
                0 => prepare(scale.tm1(), scale, system),
                1 => prepare(scale.tpcb(), scale, system),
                _ => prepare(
                    scale.tpcc().with_mix(TpccMix::OrderStatusOnly),
                    scale,
                    system,
                ),
            };
            let client_counts: Vec<usize> = scale
                .load_points()
                .iter()
                .map(|&p| scale.clients_for(p))
                .collect();
            let peak = find_peak(&client_counts, |clients| {
                run_clients(&prepared, scale, clients)
            });
            prepared.shutdown();
            // The first registered engine is the normalization base (the
            // paper normalizes to the conventional system).
            if base_peak == 0.0 {
                base_peak = peak.best_tps;
            }
            report.line(format!(
                "  {:<26} {:<10} {:>12.0} {:>14.2} {:>17.0}%",
                name,
                system.label(),
                peak.best_tps,
                peak.best_tps / base_peak.max(1.0),
                peak.cpu_utilization_at_peak
                    .unwrap_or(peak.offered_load_at_peak()),
            ));
        }
    }
    report
}

/// Figure 10: the District access trace under thread-to-transaction vs
/// thread-to-data assignment (TPC-C Payment, 10 warehouses).
pub fn fig10(scale: &Scale) -> Report {
    let mut report = Report::new("Figure 10: District access patterns (TPC-C Payment)");
    let warehouses = 10i64.min(scale.tpcc_warehouses.max(2));
    let districts = (warehouses * 10) as usize;
    let threads = 10usize;
    let tpcc = Tpcc::with_scale(
        warehouses,
        scale.tpcc_customers_per_district,
        scale.tpcc_items,
    )
    .with_mix(TpccMix::PaymentOnly);

    // Conventional (thread-to-transaction): any worker thread updates any
    // district.
    let db = Database::new(scale.system_config());
    tpcc.setup(&db).expect("setup");
    let baseline = BaselineEngine::new(Arc::clone(&db));
    let trace_baseline = AccessTrace::new();
    let tpcc = Arc::new(tpcc);
    let driver = ClientDriver::new(DriverConfig {
        clients: threads,
        duration: scale.duration,
        warmup: std::time::Duration::from_millis(0),
        hardware_contexts: scale.hardware_contexts,
    });
    {
        let tpcc = Arc::clone(&tpcc);
        let trace = trace_baseline.clone();
        let baseline = baseline.clone();
        driver.run(move |client, rng| {
            let (w_id, d_id, c_w_id, c_d_id, selector, amount) = tpcc.payment_inputs(rng);
            trace.record(client, ((w_id - 1) * 10 + (d_id - 1)) as usize);
            match tpcc
                .payment_program(baseline.db(), w_id, d_id, c_w_id, c_d_id, selector, amount)
                .and_then(|program| baseline.execute_program(program))
            {
                Ok(outcome) => outcome.into(),
                Err(_) => dora_engine::TxnOutcome::Aborted,
            }
        });
    }

    // DORA (thread-to-data): the district's executor — determined by the
    // routing rule — performs the access.
    let db = Database::new(scale.system_config());
    let tpcc_dora = Tpcc::with_scale(
        warehouses,
        scale.tpcc_customers_per_district,
        scale.tpcc_items,
    )
    .with_mix(TpccMix::PaymentOnly);
    tpcc_dora.setup(&db).expect("setup");
    let dora = Arc::new(DoraEngine::new(Arc::clone(&db), DoraConfig::default()));
    // Ten executors on the District table so the comparison uses the same
    // number of "threads" as the conventional run, like the paper's figure.
    let tpcc_dora = Arc::new(tpcc_dora);
    tpcc_dora
        .bind_dora(&dora, threads.min(scale.executors_per_table.max(2)))
        .expect("bind");
    let district_table = db.table_id("district").expect("district table");
    let trace_dora = AccessTrace::new();
    {
        let tpcc = Arc::clone(&tpcc_dora);
        let trace = trace_dora.clone();
        let dora = Arc::clone(&dora);
        let routing = dora.routing().rule(district_table).expect("district rule");
        driver.run(move |_client, rng| {
            let (w_id, d_id, c_w_id, c_d_id, selector, amount) = tpcc.payment_inputs(rng);
            let executor = routing.route(&Key::int2(w_id, d_id)).unwrap_or(0);
            trace.record(executor, ((w_id - 1) * 10 + (d_id - 1)) as usize);
            match dora.execute(
                tpcc.payment_program(dora.db(), w_id, d_id, c_w_id, c_d_id, selector, amount)
                    .expect("program")
                    .compile_dora(),
            ) {
                Ok(()) => dora_engine::TxnOutcome::Committed,
                Err(_) => dora_engine::TxnOutcome::Aborted,
            }
        });
    }
    dora.shutdown();

    report.line(format!(
        "  {} district records, {} worker threads, {} executor threads",
        districts,
        threads,
        dora.executor_count(district_table)
    ));
    report.blank();
    report.line("(a) thread-to-transaction (conventional): accesses per thread x district");
    report.line(trace_baseline.render_heatmap(threads, districts));
    report.line(format!(
        "    distinct districts touched per thread: {:?}",
        trace_baseline.distinct_districts_per_thread(threads, districts)
    ));
    report.blank();
    report.line("(b) thread-to-data (DORA): accesses per executor x district");
    let executor_threads = dora.executor_count(district_table).max(1);
    report.line(trace_dora.render_heatmap(executor_threads, districts));
    report.line(format!(
        "    distinct districts touched per executor: {:?}",
        trace_dora.distinct_districts_per_thread(executor_threads, districts)
    ));
    report
}

/// Figure 11: TM1-UpdateSubscriberData (a transaction with a ~37.5% abort
/// rate): Baseline vs the parallel (DORA-P) and serialized (DORA-S) plans.
pub fn fig11(scale: &Scale) -> Report {
    let mut report = Report::new("Figure 11: TM1-UpdateSubscriberData with a high abort rate");
    report.line(format!(
        "  {:>10} {:>16} {:>16} {:>16}",
        "load(%)", "Baseline tps", "DORA-P tps", "DORA-S tps"
    ));
    let loads = scale.load_points();
    let baseline = sweep(
        scale.tm1().with_mix(Tm1Mix::UpdateSubscriberDataOnly),
        scale,
        SystemUnderTest::Baseline,
        &loads,
    );
    let dora_p = sweep(
        scale
            .tm1()
            .with_mix(Tm1Mix::UpdateSubscriberDataOnly)
            .with_serial_update_plan(false),
        scale,
        SystemUnderTest::Dora,
        &loads,
    );
    let dora_s = sweep(
        scale
            .tm1()
            .with_mix(Tm1Mix::UpdateSubscriberDataOnly)
            .with_serial_update_plan(true),
        scale,
        SystemUnderTest::Dora,
        &loads,
    );
    for (index, load) in loads.iter().enumerate() {
        report.line(format!(
            "  {:>10.0} {:>16.0} {:>16.0} {:>16.0}",
            load,
            baseline[index].1.throughput_tps,
            dora_p[index].1.throughput_tps,
            dora_s[index].1.throughput_tps
        ));
    }
    report.blank();
    report.kv(
        "observed abort rate (Baseline, peak load)",
        pct(baseline.last().map(|(_, r)| r.abort_rate()).unwrap_or(0.0)),
    );
    report
}

/// One phase of the adaptive-repartitioning experiment: two back-to-back
/// driver intervals on one engine, so "before" captures the cold routing
/// rule and "after" captures whatever the adaptive controller converged to
/// during the first interval.
#[derive(Debug, Clone)]
pub struct SkewPhase {
    /// Scenario label ("static" / "adaptive" / with "+drift").
    pub label: &'static str,
    /// Committed tps over the first interval (cold rule).
    pub before_tps: f64,
    /// Committed tps over the second interval.
    pub after_tps: f64,
    /// Resizes the adaptive controller drove (0 for static phases).
    pub resizes: u64,
    /// Actions served per executor during the second interval only.
    pub final_loads: Vec<u64>,
}

impl SkewPhase {
    /// Busiest over least-busy executor across the final interval (idle
    /// executors count as one action so the ratio stays finite).
    pub fn load_ratio(&self) -> f64 {
        let max = self.final_loads.iter().copied().max().unwrap_or(0).max(1);
        let min = self.final_loads.iter().copied().min().unwrap_or(0).max(1);
        max as f64 / min as f64
    }
}

/// Everything the skew experiment measured; serialized to `BENCH_skew.json`
/// by the CI bench-smoke job so the perf trajectory is tracked per PR.
#[derive(Debug, Clone)]
pub struct SkewSummary {
    /// Zipfian skew parameter.
    pub theta: f64,
    /// Counter rows.
    pub keys: i64,
    /// Executors on the counters table.
    pub executors: usize,
    /// Client threads driving load.
    pub clients: usize,
    /// Measured interval length per driver run, in milliseconds.
    pub interval_ms: u64,
    /// The four phases: static/adaptive × fixed/drifting hot range.
    pub phases: Vec<SkewPhase>,
}

impl SkewSummary {
    /// Renders the summary as a small JSON document (the workspace has no
    /// serde; the fields are all numbers, so hand-rolling is safe).
    pub fn to_json(&self) -> String {
        let phases = self
            .phases
            .iter()
            .map(|phase| {
                let loads = phase
                    .final_loads
                    .iter()
                    .map(|l| l.to_string())
                    .collect::<Vec<_>>()
                    .join(",");
                format!(
                    concat!(
                        "    {{\"label\": \"{}\", \"before_tps\": {:.1}, ",
                        "\"after_tps\": {:.1}, \"resizes\": {}, ",
                        "\"final_loads\": [{}], \"load_ratio\": {:.3}}}"
                    ),
                    phase.label,
                    phase.before_tps,
                    phase.after_tps,
                    phase.resizes,
                    loads,
                    phase.load_ratio(),
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            concat!(
                "{{\n  \"experiment\": \"skew\",\n  \"theta\": {},\n",
                "  \"keys\": {},\n  \"executors\": {},\n  \"clients\": {},\n",
                "  \"interval_ms\": {},\n  \"phases\": [\n{}\n  ]\n}}\n"
            ),
            self.theta, self.keys, self.executors, self.clients, self.interval_ms, phases
        )
    }
}

fn run_skew_phase(
    scale: &Scale,
    label: &'static str,
    drift: Option<(u64, i64)>,
    adaptive: bool,
) -> SkewPhase {
    let db = Database::new(scale.system_config());
    let mut workload = scale.skewed();
    if let Some((every, step)) = drift {
        workload = workload.with_drift(every, step);
    }
    workload.setup(&db).expect("setup skewed workload");
    let workload: Arc<dyn Workload> = Arc::new(workload);

    let mut config = DoraConfig::default();
    if adaptive {
        config.adaptive = AdaptiveConfig::eager();
    }
    let executors = scale.executors_per_table.max(2);
    let execution = Arc::new(DoraExecution::new(Arc::new(DoraEngine::new(
        Arc::clone(&db),
        config,
    ))));
    execution
        .bind(Arc::clone(&workload), executors)
        .expect("bind skewed workload");
    let table = db.table_id("skewed_counters").expect("counters table");

    let clients = scale.clients_for(75.0);
    let driver = ClientDriver::new(DriverConfig {
        clients,
        duration: scale.duration,
        warmup: scale.warmup,
        hardware_contexts: scale.hardware_contexts,
    });
    let engine_dyn: Arc<dyn ExecutionEngine> = Arc::clone(&execution) as _;
    let before = driver.run_engine(Arc::clone(&engine_dyn));
    // The second run reuses the already-warm engine with no warm-up of its
    // own, so the load delta around it is exactly the final interval.
    let after_driver = ClientDriver::new(DriverConfig {
        warmup: std::time::Duration::ZERO,
        ..driver.config().clone()
    });
    let loads_mark = execution.dora().executor_loads(table).expect("loads");
    let after = after_driver.run_engine(engine_dyn);
    let loads_end = execution.dora().executor_loads(table).expect("loads");
    let resizes = execution.adaptive_resizes();
    execution.shutdown();

    SkewPhase {
        label,
        before_tps: before.throughput_tps,
        after_tps: after.throughput_tps,
        resizes,
        final_loads: loads_end
            .iter()
            .zip(&loads_mark)
            .map(|(end, mark)| end.saturating_sub(*mark))
            .collect(),
    }
}

/// The adaptive-repartitioning experiment: a zipfian workload (θ from
/// [`Scale::zipf_theta`]) run on DORA with a static even-range rule vs. the
/// adaptive controller, each for a fixed and a drifting hot range. Not a
/// paper figure — this probes the Appendix A.2.1 machinery the paper only
/// sketches — so it reports before/after throughput and the per-executor
/// load spread instead of mirroring a printed plot.
pub fn skew(scale: &Scale) -> Report {
    skew_with_summary(scale).0
}

/// [`skew`], also returning the machine-readable summary.
pub fn skew_with_summary(scale: &Scale) -> (Report, SkewSummary) {
    // Drift fast enough that the hot range moves several times per measured
    // interval even at quick scale.
    let drift = Some((1_000, (scale.skew_keys / 4).max(1)));
    let phases = vec![
        run_skew_phase(scale, "static", None, false),
        run_skew_phase(scale, "adaptive", None, true),
        run_skew_phase(scale, "static+drift", drift, false),
        run_skew_phase(scale, "adaptive+drift", drift, true),
    ];
    let summary = SkewSummary {
        theta: scale.zipf_theta,
        keys: scale.skew_keys,
        executors: scale.executors_per_table.max(2),
        clients: scale.clients_for(75.0),
        interval_ms: scale.duration.as_millis() as u64,
        phases,
    };

    let mut report = Report::new(format!(
        "Skew: adaptive repartitioning under zipfian load (theta={})",
        summary.theta
    ));
    report.line(format!(
        "  {} keys, {} executors, {} clients, {} ms per interval",
        summary.keys, summary.executors, summary.clients, summary.interval_ms
    ));
    report.blank();
    report.line(format!(
        "  {:<16} {:>12} {:>12} {:>9} {:>12}  final loads",
        "scenario", "before tps", "after tps", "resizes", "load ratio"
    ));
    for phase in &summary.phases {
        report.line(format!(
            "  {:<16} {:>12.0} {:>12.0} {:>9} {:>12.2}  {:?}",
            phase.label,
            phase.before_tps,
            phase.after_tps,
            phase.resizes,
            phase.load_ratio(),
            phase.final_loads,
        ));
    }
    report.blank();
    report.line("  (load ratio = busiest/least-busy executor over the final interval;");
    report.line("   the adaptive rows should show >=1 resize and a ratio near 1)");
    (report, summary)
}

/// One mode of the `dispatch` experiment: the fan-out workload driven with
/// the executor message path either per-message or batched.
#[derive(Debug, Clone)]
pub struct DispatchMode {
    /// Mode label ("per-message" / "batched").
    pub label: &'static str,
    /// Committed tps over the measured interval.
    pub tps: f64,
    /// Transactions committed.
    pub committed: u64,
    /// Transactions aborted (per-message mode may abort deadlock victims —
    /// its dispatches are not latched atomically).
    pub aborted: u64,
    /// DORA actions executed.
    pub actions: u64,
    /// Messages pushed to executor inboxes.
    pub messages: u64,
    /// Producer-side inbox lock acquisitions (one may carry many messages).
    pub producer_batches: u64,
    /// Consumer-side inbox lock acquisitions that yielded work.
    pub inbox_drains: u64,
}

impl DispatchMode {
    /// Inbox-mutex acquisitions (producer + consumer side) per executed
    /// action — the figure of merit: batching must push this well below the
    /// per-message mode's ~2.
    pub fn mutex_acquisitions_per_action(&self) -> f64 {
        (self.producer_batches + self.inbox_drains) as f64 / self.actions.max(1) as f64
    }

    /// Average messages per producer-side push.
    pub fn avg_producer_batch(&self) -> f64 {
        self.messages as f64 / self.producer_batches.max(1) as f64
    }

    /// Average messages per consumer-side drain.
    pub fn avg_drain_batch(&self) -> f64 {
        self.messages as f64 / self.inbox_drains.max(1) as f64
    }
}

/// Everything the `dispatch` experiment measured; serialized to
/// `BENCH_dispatch.json` by the CI bench-smoke job.
#[derive(Debug, Clone)]
pub struct DispatchSummary {
    /// Counter rows.
    pub keys: i64,
    /// Actions per transaction (the phase's fan-out).
    pub fanout: usize,
    /// Executors on the counters table.
    pub executors: usize,
    /// Client threads driving load.
    pub clients: usize,
    /// Measured interval length, in milliseconds.
    pub interval_ms: u64,
    /// The measured modes, per-message first.
    pub modes: Vec<DispatchMode>,
}

impl DispatchSummary {
    /// Renders the summary as a small JSON document (the workspace has no
    /// serde; the fields are all numbers, so hand-rolling is safe).
    pub fn to_json(&self) -> String {
        let modes = self
            .modes
            .iter()
            .map(|mode| {
                format!(
                    concat!(
                        "    {{\"label\": \"{}\", \"tps\": {:.1}, ",
                        "\"committed\": {}, \"aborted\": {}, \"actions\": {}, ",
                        "\"messages\": {}, \"producer_batches\": {}, ",
                        "\"inbox_drains\": {}, \"mutex_acq_per_action\": {:.4}, ",
                        "\"avg_producer_batch\": {:.3}, \"avg_drain_batch\": {:.3}}}"
                    ),
                    mode.label,
                    mode.tps,
                    mode.committed,
                    mode.aborted,
                    mode.actions,
                    mode.messages,
                    mode.producer_batches,
                    mode.inbox_drains,
                    mode.mutex_acquisitions_per_action(),
                    mode.avg_producer_batch(),
                    mode.avg_drain_batch(),
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            concat!(
                "{{\n  \"experiment\": \"dispatch\",\n  \"keys\": {},\n",
                "  \"fanout\": {},\n  \"executors\": {},\n  \"clients\": {},\n",
                "  \"interval_ms\": {},\n  \"modes\": [\n{}\n  ]\n}}\n"
            ),
            self.keys, self.fanout, self.executors, self.clients, self.interval_ms, modes
        )
    }
}

fn run_dispatch_mode(scale: &Scale, label: &'static str, batched: bool) -> DispatchMode {
    let db = Database::new(scale.system_config());
    let workload = scale.fanout();
    workload.setup(&db).expect("setup fanout workload");
    let workload: Arc<dyn Workload> = Arc::new(workload);

    let config = DoraConfig {
        message_batching: batched,
        ..DoraConfig::default()
    };
    // High executor count: the fan-out workload's point is many partitions,
    // so it gets at least four executors even at quick scale.
    let executors = scale.executors_per_table.max(4);
    let execution = Arc::new(DoraExecution::new(Arc::new(DoraEngine::new(
        Arc::clone(&db),
        config,
    ))));
    execution
        .bind(Arc::clone(&workload), executors)
        .expect("bind fanout workload");

    let driver = ClientDriver::new(DriverConfig {
        clients: scale.clients_for(100.0),
        duration: scale.duration,
        warmup: scale.warmup,
        hardware_contexts: scale.hardware_contexts,
    });
    let result = driver.run_engine(Arc::clone(&execution) as _);
    execution.shutdown();

    // The metric deltas cover exactly the measured interval; experiments run
    // sequentially, so the executor-path counters are attributable to this
    // engine.
    DispatchMode {
        label,
        tps: result.throughput_tps,
        committed: result.committed,
        aborted: result.aborted,
        actions: result.metrics.counter(CounterKind::ActionsExecuted),
        messages: result.metrics.counter(CounterKind::DoraMessages),
        producer_batches: result.metrics.counter(CounterKind::DispatchBatches),
        inbox_drains: result.metrics.counter(CounterKind::InboxDrains),
    }
}

/// The message-path experiment: the high-fan-out counters workload run with
/// the executor message path per-message vs. batched. Not a paper figure —
/// it quantifies the "additional inter-core communication" the appendix
/// names as DORA's cost, and how far batching (amortized dispatch,
/// drain-style dequeue) pushes it down. The mutex-acquisitions-per-action
/// column is counter-derived, not sampled.
pub fn dispatch(scale: &Scale) -> Report {
    dispatch_with_summary(scale).0
}

/// [`dispatch`], also returning the machine-readable summary.
pub fn dispatch_with_summary(scale: &Scale) -> (Report, DispatchSummary) {
    let modes = vec![
        run_dispatch_mode(scale, "per-message", false),
        run_dispatch_mode(scale, "batched", true),
    ];
    let summary = DispatchSummary {
        keys: scale.fanout_keys,
        fanout: scale.fanout_actions,
        executors: scale.executors_per_table.max(4),
        clients: scale.clients_for(100.0),
        interval_ms: scale.duration.as_millis() as u64,
        modes,
    };

    let mut report = Report::new("Dispatch: executor message path, per-message vs batched");
    report.line(format!(
        "  {} keys, {} actions/txn, {} executors, {} clients, {} ms per interval",
        summary.keys, summary.fanout, summary.executors, summary.clients, summary.interval_ms
    ));
    report.blank();
    report.line(format!(
        "  {:<12} {:>10} {:>8} {:>10} {:>12} {:>12} {:>12}",
        "mode", "tps", "aborts", "actions", "locks/actn", "push batch", "drain batch"
    ));
    for mode in &summary.modes {
        report.line(format!(
            "  {:<12} {:>10.0} {:>8} {:>10} {:>12.3} {:>12.2} {:>12.2}",
            mode.label,
            mode.tps,
            mode.aborted,
            mode.actions,
            mode.mutex_acquisitions_per_action(),
            mode.avg_producer_batch(),
            mode.avg_drain_batch(),
        ));
    }
    report.blank();
    if let [before, after] = &summary.modes[..] {
        report.kv(
            "throughput batched/per-message",
            format!("{:.2}x", after.tps / before.tps.max(1.0)),
        );
        report.kv(
            "lock acquisitions per action",
            format!(
                "{:.3} -> {:.3}",
                before.mutex_acquisitions_per_action(),
                after.mutex_acquisitions_per_action()
            ),
        );
    }
    report.line("  (locks/actn = producer pushes + consumer drains per executed action;");
    report.line("   per-message mode pays ~2, batching amortizes both sides)");
    (report, summary)
}

/// One cell of the `commit` durability experiment: one engine × one commit
/// mode × one simulated log-device latency.
#[derive(Debug, Clone)]
pub struct CommitRow {
    /// Engine label ("Baseline" / "DORA").
    pub engine: &'static str,
    /// Commit-mode label ("sync" / "group" / "group+elr").
    pub mode: &'static str,
    /// Simulated log-device latency in microseconds.
    pub flush_us: u64,
    /// Log streams the WAL was partitioned into (1 = the classic single
    /// serial log).
    pub streams: usize,
    /// Committed tps over the measured interval.
    pub tps: f64,
    /// Transactions committed.
    pub committed: u64,
    /// Device writes the flusher daemon performed (0 in sync mode; the
    /// whole run, warm-up included).
    pub flush_groups: u64,
    /// Mean commit records hardened per flusher device write.
    pub mean_group: f64,
    /// Largest flush group observed.
    pub max_group: u64,
    /// Transactions whose locks were released before durability.
    pub elr_releases: u64,
    /// Mean client-visible commit wait, in microseconds.
    pub commit_wait_us: f64,
    /// Mean client latency (execute + commit), in microseconds.
    pub latency_us: f64,
}

/// Everything the `commit` experiment measured; serialized to
/// `BENCH_commit.json` by the CI bench-smoke job.
#[derive(Debug, Clone)]
pub struct CommitSummary {
    /// TPC-B branches / accounts-per-branch driving the log pressure.
    pub branches: i64,
    /// Client threads driving load.
    pub clients: usize,
    /// Measured interval length, in milliseconds.
    pub interval_ms: u64,
    /// The swept simulated device latencies, in microseconds.
    pub flush_points: Vec<u64>,
    /// The swept log-stream counts (the partitioned-WAL axis).
    pub stream_points: Vec<usize>,
    /// One row per engine × mode × device latency × stream count.
    pub rows: Vec<CommitRow>,
}

impl CommitSummary {
    /// Renders the summary as a small JSON document (the workspace has no
    /// serde; the fields are all numbers, so hand-rolling is safe).
    pub fn to_json(&self) -> String {
        let rows = self
            .rows
            .iter()
            .map(|row| {
                format!(
                    concat!(
                        "    {{\"engine\": \"{}\", \"mode\": \"{}\", ",
                        "\"flush_us\": {}, \"streams\": {}, \"tps\": {:.1}, \"committed\": {}, ",
                        "\"flush_groups\": {}, \"mean_group\": {:.3}, ",
                        "\"max_group\": {}, \"elr_releases\": {}, ",
                        "\"commit_wait_us\": {:.1}, \"latency_us\": {:.1}}}"
                    ),
                    row.engine,
                    row.mode,
                    row.flush_us,
                    row.streams,
                    row.tps,
                    row.committed,
                    row.flush_groups,
                    row.mean_group,
                    row.max_group,
                    row.elr_releases,
                    row.commit_wait_us,
                    row.latency_us,
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        let points = self
            .flush_points
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let stream_points = self
            .stream_points
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(",");
        format!(
            concat!(
                "{{\n  \"experiment\": \"commit\",\n  \"branches\": {},\n",
                "  \"clients\": {},\n  \"interval_ms\": {},\n",
                "  \"flush_points\": [{}],\n  \"stream_points\": [{}],\n",
                "  \"rows\": [\n{}\n  ]\n}}\n"
            ),
            self.branches, self.clients, self.interval_ms, points, stream_points, rows
        )
    }
}

/// The three commit modes the durability experiment compares.
fn commit_modes() -> [(&'static str, dora_common::DurabilityConfig); 3] {
    use dora_common::DurabilityConfig;
    [
        ("sync", DurabilityConfig::sync_commit()),
        ("group", DurabilityConfig::group_commit_only()),
        ("group+elr", DurabilityConfig::default()),
    ]
}

fn run_commit_cell(
    scale: &Scale,
    system: SystemUnderTest,
    mode: &'static str,
    durability: dora_common::DurabilityConfig,
    flush_us: u64,
    streams: usize,
) -> CommitRow {
    let config = dora_common::SystemConfig {
        log_flush_micros: flush_us,
        durability: durability.with_log_streams(streams),
        ..scale.system_config()
    };
    let db = Database::new(config);
    let workload: Arc<dyn Workload> = Arc::new(scale.tpcb());
    workload.setup(&db).expect("setup TPC-B");
    let engine = build_engine(system, Arc::clone(&db));
    engine
        .bind(Arc::clone(&workload), scale.executors_per_table)
        .expect("bind TPC-B");

    let driver = ClientDriver::new(DriverConfig {
        clients: scale.clients_for(100.0),
        duration: scale.duration,
        warmup: scale.warmup,
        hardware_contexts: scale.hardware_contexts,
    });
    let result = driver.run_engine(Arc::clone(&engine));
    engine.shutdown();

    // The group-size histogram is per-database (whole run including
    // warm-up); the counter deltas cover exactly the measured interval.
    let groups = db.log_manager().flush_group_sizes();
    CommitRow {
        engine: system.label(),
        mode,
        flush_us,
        streams,
        tps: result.throughput_tps,
        committed: result.committed,
        flush_groups: groups.count(),
        mean_group: groups.mean(),
        max_group: groups.max(),
        elr_releases: result.metrics.counter(CounterKind::ElrEarlyReleases),
        commit_wait_us: result.mean_commit_wait().as_nanos() as f64 / 1_000.0,
        latency_us: result.latency.mean().as_nanos() as f64 / 1_000.0,
    }
}

/// The durability experiment: TPC-B (one log record stream per transfer)
/// under synchronous commit vs. group commit vs. group commit with early
/// lock release, across simulated log-device latencies, on both engines.
/// Not a paper figure — it probes the Section 5.4 observation that the log
/// becomes the next bottleneck once lock contention is gone, and quantifies
/// how far the flusher daemon and ELR push it back.
pub fn commit(scale: &Scale) -> Report {
    commit_with_summary(scale).0
}

/// [`commit`], also returning the machine-readable summary.
pub fn commit_with_summary(scale: &Scale) -> (Report, CommitSummary) {
    let flush_points = scale.commit_flush_points();
    let stream_points = scale.log_stream_points.clone();
    let mut rows = Vec::new();
    for &flush_us in &flush_points {
        for system in SystemUnderTest::ALL {
            for (mode, durability) in commit_modes() {
                for &streams in &stream_points {
                    rows.push(run_commit_cell(
                        scale,
                        system,
                        mode,
                        durability.clone(),
                        flush_us,
                        streams,
                    ));
                }
            }
        }
    }
    // The partitioned log must not regress the synchronous baseline: sync
    // commit flushes every touched stream from the committing thread itself,
    // so it stays a valid A/B point at every stream count.
    for row in rows.iter().filter(|r| r.mode == "sync") {
        assert!(
            row.committed > 0,
            "{} sync commit produced no transactions with {} log streams",
            row.engine,
            row.streams
        );
    }
    let summary = CommitSummary {
        branches: scale.tpcb_branches,
        clients: scale.clients_for(100.0),
        interval_ms: scale.duration.as_millis() as u64,
        flush_points,
        stream_points,
        rows,
    };

    let mut report = Report::new("Commit: sync vs group commit vs group+ELR (TPC-B)");
    report.line(format!(
        "  {} branches, {} clients, {} ms per interval",
        summary.branches, summary.clients, summary.interval_ms
    ));
    for &flush_us in &summary.flush_points {
        report.blank();
        report.line(format!("  log-device latency {flush_us} us:"));
        report.line(format!(
            "  {:<10} {:<10} {:>8} {:>10} {:>12} {:>10} {:>12} {:>12}",
            "engine", "mode", "streams", "tps", "mean group", "elr", "commit(us)", "latency(us)"
        ));
        for row in summary.rows.iter().filter(|r| r.flush_us == flush_us) {
            report.line(format!(
                "  {:<10} {:<10} {:>8} {:>10.0} {:>12.2} {:>10} {:>12.1} {:>12.1}",
                row.engine,
                row.mode,
                row.streams,
                row.tps,
                row.mean_group,
                row.elr_releases,
                row.commit_wait_us,
                row.latency_us,
            ));
        }
    }
    report.blank();
    report.line("  (mean group = commit records hardened per flusher device write;");
    report.line("   sync mode has no flusher, so its group column reads 0;");
    report.line("   streams = WAL partitions, each with its own flusher daemon)");
    (report, summary)
}

/// One cell of the `recover` experiment: one log-stream count, measured
/// three ways (serial replay, parallel replay, checkpoint + delta).
#[derive(Debug, Clone)]
pub struct RecoverRow {
    /// Log streams the WAL was partitioned into while the workload ran.
    pub streams: usize,
    /// Replay worker threads (= the stream count, so the axis reads as
    /// "recovery parallelism bought by partitioning the log").
    pub workers: usize,
    /// Committed transactions reconstructed by replay.
    pub txns: usize,
    /// Total log records across all streams.
    pub records: usize,
    /// Records past the checkpoint's low-water marks (what checkpoint
    /// recovery replays instead of the whole log).
    pub delta_records: usize,
    /// Single-threaded full-log replay, in milliseconds.
    pub serial_ms: f64,
    /// Parallel full-log replay with `workers` threads, in milliseconds.
    pub parallel_ms: f64,
    /// Checkpoint snapshot + parallel delta replay, in milliseconds.
    pub checkpoint_ms: f64,
}

impl RecoverRow {
    /// Committed transactions replayed per second by the parallel path.
    pub fn parallel_tps(&self) -> f64 {
        if self.parallel_ms <= 0.0 {
            0.0
        } else {
            self.txns as f64 * 1_000.0 / self.parallel_ms
        }
    }

    /// Serial-over-parallel replay time ratio.
    pub fn speedup(&self) -> f64 {
        if self.parallel_ms <= 0.0 {
            0.0
        } else {
            self.serial_ms / self.parallel_ms
        }
    }
}

/// Everything the `recover` experiment measured; serialized to
/// `BENCH_recover.json` by the CI bench-smoke job.
#[derive(Debug, Clone)]
pub struct RecoverSummary {
    /// TPC-B branches generating the log.
    pub branches: i64,
    /// Transactions logged per cell before measuring replay.
    pub txns_per_cell: usize,
    /// The swept log-stream counts.
    pub stream_points: Vec<usize>,
    /// One row per stream count.
    pub rows: Vec<RecoverRow>,
}

impl RecoverSummary {
    /// Renders the summary as a small JSON document (the workspace has no
    /// serde; the fields are all numbers, so hand-rolling is safe).
    pub fn to_json(&self) -> String {
        let rows = self
            .rows
            .iter()
            .map(|row| {
                format!(
                    concat!(
                        "    {{\"streams\": {}, \"workers\": {}, \"txns\": {}, ",
                        "\"records\": {}, \"delta_records\": {}, ",
                        "\"serial_ms\": {:.3}, \"parallel_ms\": {:.3}, ",
                        "\"checkpoint_ms\": {:.3}, \"parallel_tps\": {:.1}, ",
                        "\"speedup\": {:.3}}}"
                    ),
                    row.streams,
                    row.workers,
                    row.txns,
                    row.records,
                    row.delta_records,
                    row.serial_ms,
                    row.parallel_ms,
                    row.checkpoint_ms,
                    row.parallel_tps(),
                    row.speedup(),
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        let points = self
            .stream_points
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(",");
        format!(
            concat!(
                "{{\n  \"experiment\": \"recover\",\n  \"branches\": {},\n",
                "  \"txns_per_cell\": {},\n  \"stream_points\": [{}],\n",
                "  \"rows\": [\n{}\n  ]\n}}\n"
            ),
            self.branches, self.txns_per_cell, points, rows
        )
    }
}

fn run_recover_cell(scale: &Scale, streams: usize) -> RecoverRow {
    // Replay speed is the subject; a simulated device latency would only
    // slow the logging phase down.
    let config = dora_common::SystemConfig {
        log_flush_micros: 0,
        durability: dora_common::DurabilityConfig::default().with_log_streams(streams),
        ..scale.system_config()
    };
    let db = Database::new(config);
    let workload: Arc<dyn Workload> = Arc::new(scale.tpcb());
    workload.setup(&db).expect("setup TPC-B");
    // DORA drives the log so the appends genuinely spread across the
    // executor-owned streams; at one stream this degenerates to the classic
    // serial WAL and serves as the baseline row.
    let engine = build_engine(SystemUnderTest::Dora, Arc::clone(&db));
    engine
        .bind(Arc::clone(&workload), scale.executors_per_table)
        .expect("bind TPC-B");

    // First half of the transactions, then a fuzzy checkpoint, then the
    // second half — so checkpoint recovery has a real snapshot *and* a real
    // delta to replay.
    let mut rng = SmallRng::seed_from_u64(0x5EC0_4E41 + streams as u64);
    let half = scale.recover_txns / 2;
    for _ in 0..half {
        let _ = engine.execute_one(&mut rng);
    }
    db.log_manager().take_checkpoint();
    for _ in half..scale.recover_txns {
        let _ = engine.execute_one(&mut rng);
    }
    engine.shutdown();

    let log = db.log_manager();
    let records = log.len();
    let txns: std::collections::HashSet<TxnId> =
        log.committed_changes().iter().map(|r| r.txn).collect();
    let delta_records = log
        .checkpoint_snapshot()
        .map(|cp| cp.pending().len() + log.records_after(cp.low_water()).len())
        .unwrap_or(records);

    let fresh_replica = || {
        let fresh = Database::new(scale.system_config());
        workload.create_schema(&fresh).expect("replica schema");
        workload.load(&fresh).expect("replica load");
        fresh
    };
    // Two passes per path, keeping the faster one: the first replay after
    // the logging phase pays one-off allocator and cache warm-up that would
    // otherwise be billed to whichever path happens to run first.
    let time_ms = |replay: &dyn Fn(&Database)| {
        (0..2)
            .map(|_| {
                let replica = fresh_replica();
                let start = Instant::now();
                replay(&replica);
                start.elapsed().as_secs_f64() * 1_000.0
            })
            .fold(f64::INFINITY, f64::min)
    };
    let workers = streams.max(1);
    let serial_ms = time_ms(&|replica| db.recover_into(replica).expect("serial replay"));
    let parallel_ms = time_ms(&|replica| {
        db.recover_into_parallel(replica, workers)
            .expect("parallel replay")
    });
    let checkpoint_ms = time_ms(&|replica| {
        db.recover_checkpoint_into(replica, workers)
            .expect("checkpoint replay")
    });

    RecoverRow {
        streams,
        workers,
        txns: txns.len(),
        records,
        delta_records,
        serial_ms,
        parallel_ms,
        checkpoint_ms,
    }
}

/// The recovery experiment: log a fixed TPC-B transaction count per
/// log-stream count, then measure serial replay vs. parallel replay (one
/// worker per stream) vs. fuzzy-checkpoint + delta replay. Not a paper
/// figure — it quantifies what partitioning the WAL buys at restart: replay
/// parallelism that scales with the stream count, and a checkpoint delta
/// that shrinks the work regardless of parallelism.
pub fn recover(scale: &Scale) -> Report {
    recover_with_summary(scale).0
}

/// [`recover`], also returning the machine-readable summary.
pub fn recover_with_summary(scale: &Scale) -> (Report, RecoverSummary) {
    let stream_points = scale.log_stream_points.clone();
    let rows: Vec<RecoverRow> = stream_points
        .iter()
        .map(|&streams| run_recover_cell(scale, streams))
        .collect();
    let summary = RecoverSummary {
        branches: scale.tpcb_branches,
        txns_per_cell: scale.recover_txns,
        stream_points,
        rows,
    };

    let mut report = Report::new("Recover: parallel log replay over a partitioned WAL (TPC-B)");
    report.line(format!(
        "  {} branches, {} transactions per cell, checkpoint at the midpoint",
        summary.branches, summary.txns_per_cell
    ));
    report.blank();
    report.line(format!(
        "  {:>8} {:>8} {:>8} {:>8} {:>11} {:>13} {:>9} {:>9} {:>12}",
        "streams",
        "workers",
        "txns",
        "records",
        "serial(ms)",
        "parallel(ms)",
        "speedup",
        "ckpt(ms)",
        "replay-tps"
    ));
    for row in &summary.rows {
        report.line(format!(
            "  {:>8} {:>8} {:>8} {:>8} {:>11.2} {:>13.2} {:>8.2}x {:>9.2} {:>12.0}",
            row.streams,
            row.workers,
            row.txns,
            row.records,
            row.serial_ms,
            row.parallel_ms,
            row.speedup(),
            row.checkpoint_ms,
            row.parallel_tps(),
        ));
    }
    report.blank();
    report.line("  (parallel replay shards committed records by page across one worker");
    report.line("   per stream; ckpt = checkpoint snapshot + parallel delta replay)");
    (report, summary)
}

/// Runs every paper figure at the given scale, returning the reports.
/// The `skew` experiment is not included — run it through
/// [`skew_with_summary`] so its report and machine-readable summary come
/// from the same measurement.
pub fn figures(scale: &Scale) -> Vec<Report> {
    vec![
        fig1(scale),
        fig2(scale),
        fig3(scale),
        fig4(scale),
        fig5(scale),
        fig6(scale),
        fig7(scale),
        fig8(scale),
        fig10(scale),
        fig11(scale),
    ]
}

/// Runs every experiment (paper figures plus `skew`, `dispatch`, `commit`
/// and `recover`) at the given scale.
pub fn all(scale: &Scale) -> Vec<Report> {
    let mut reports = figures(scale);
    reports.push(skew(scale));
    reports.push(dispatch(scale));
    reports.push(commit(scale));
    reports.push(recover(scale));
    reports
}

/// Looks an experiment up by name (`fig1`, `fig2`, ...). `fig9` is the
/// step-by-step Payment execution walk-through, which is validated by the
/// integration test `payment_twelve_steps` rather than by a measurement.
pub fn by_name(name: &str, scale: &Scale) -> Option<Report> {
    match name {
        "fig1" => Some(fig1(scale)),
        "fig2" => Some(fig2(scale)),
        "fig3" => Some(fig3(scale)),
        "fig4" => Some(fig4(scale)),
        "fig5" => Some(fig5(scale)),
        "fig6" => Some(fig6(scale)),
        "fig7" => Some(fig7(scale)),
        "fig8" => Some(fig8(scale)),
        "fig10" => Some(fig10(scale)),
        "fig11" => Some(fig11(scale)),
        "skew" => Some(skew(scale)),
        "dispatch" => Some(dispatch(scale)),
        "commit" => Some(commit(scale)),
        "recover" => Some(recover(scale)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn micro_scale() -> Scale {
        Scale {
            duration: Duration::from_millis(80),
            warmup: Duration::from_millis(10),
            tm1_subscribers: 300,
            tpcc_warehouses: 2,
            tpcc_customers_per_district: 20,
            tpcc_items: 30,
            tpcb_branches: 2,
            tpcb_accounts_per_branch: 30,
            executors_per_table: 2,
            hardware_contexts: 4,
            log_flush_micros: 0,
            skew_keys: 100,
            zipf_theta: 0.99,
            fanout_keys: 64,
            fanout_actions: 4,
            log_stream_points: vec![1, 2],
            recover_txns: 120,
        }
    }

    #[test]
    fn fig4_describes_payment_graph_shape() {
        let report = fig4(&micro_scale());
        let text = report.render();
        assert!(text.contains("phase 1"), "{text}");
        assert!(text.contains("phase 2"), "{text}");
        assert!(text.contains("payment-history"), "{text}");
    }

    #[test]
    fn fig5_reports_lock_classes_for_both_systems() {
        let report = fig5(&micro_scale());
        let text = report.render();
        assert!(text.contains("Baseline"));
        assert!(text.contains("DORA"));
        assert!(text.contains("TPC-C OrderStatus"));
    }

    #[test]
    fn experiment_lookup_by_name() {
        let scale = micro_scale();
        assert!(by_name("fig4", &scale).is_some());
        assert!(by_name("fig99", &scale).is_none());
    }

    #[test]
    fn skew_summary_renders_valid_json_shape() {
        let summary = SkewSummary {
            theta: 0.99,
            keys: 100,
            executors: 2,
            clients: 3,
            interval_ms: 80,
            phases: vec![SkewPhase {
                label: "adaptive",
                before_tps: 1000.5,
                after_tps: 2000.25,
                resizes: 3,
                final_loads: vec![40, 60],
            }],
        };
        let json = summary.to_json();
        assert!(json.contains("\"experiment\": \"skew\""), "{json}");
        assert!(json.contains("\"theta\": 0.99"), "{json}");
        assert!(json.contains("\"resizes\": 3"), "{json}");
        assert!(json.contains("\"final_loads\": [40,60]"), "{json}");
        assert!(json.contains("\"load_ratio\": 1.500"), "{json}");
        // Balanced braces/brackets — the cheapest structural validity check
        // without a JSON parser in the workspace.
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close} in {json}"
            );
        }
    }

    #[test]
    fn dispatch_summary_renders_valid_json_shape() {
        let summary = DispatchSummary {
            keys: 64,
            fanout: 4,
            executors: 2,
            clients: 3,
            interval_ms: 80,
            modes: vec![
                DispatchMode {
                    label: "per-message",
                    tps: 1000.0,
                    committed: 100,
                    aborted: 1,
                    actions: 400,
                    messages: 500,
                    producer_batches: 500,
                    inbox_drains: 500,
                },
                DispatchMode {
                    label: "batched",
                    tps: 2000.0,
                    committed: 200,
                    aborted: 0,
                    actions: 800,
                    messages: 1000,
                    producer_batches: 250,
                    inbox_drains: 125,
                },
            ],
        };
        let json = summary.to_json();
        assert!(json.contains("\"experiment\": \"dispatch\""), "{json}");
        assert!(json.contains("\"label\": \"per-message\""), "{json}");
        assert!(json.contains("\"label\": \"batched\""), "{json}");
        assert!(json.contains("\"mutex_acq_per_action\": 2.5000"), "{json}");
        assert!(json.contains("\"avg_drain_batch\": 8.000"), "{json}");
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close} in {json}"
            );
        }
    }

    #[test]
    fn commit_summary_renders_valid_json_shape() {
        let summary = CommitSummary {
            branches: 8,
            clients: 4,
            interval_ms: 80,
            flush_points: vec![15, 60],
            stream_points: vec![1, 4],
            rows: vec![
                CommitRow {
                    engine: "Baseline",
                    mode: "sync",
                    flush_us: 15,
                    streams: 1,
                    tps: 1000.0,
                    committed: 100,
                    flush_groups: 0,
                    mean_group: 0.0,
                    max_group: 0,
                    elr_releases: 0,
                    commit_wait_us: 25.5,
                    latency_us: 120.0,
                },
                CommitRow {
                    engine: "DORA",
                    mode: "group+elr",
                    flush_us: 60,
                    streams: 4,
                    tps: 2500.0,
                    committed: 250,
                    flush_groups: 40,
                    mean_group: 6.25,
                    max_group: 16,
                    elr_releases: 250,
                    commit_wait_us: 80.0,
                    latency_us: 150.0,
                },
            ],
        };
        let json = summary.to_json();
        assert!(json.contains("\"experiment\": \"commit\""), "{json}");
        assert!(json.contains("\"flush_points\": [15,60]"), "{json}");
        assert!(json.contains("\"stream_points\": [1,4]"), "{json}");
        assert!(json.contains("\"streams\": 4"), "{json}");
        assert!(json.contains("\"mode\": \"sync\""), "{json}");
        assert!(json.contains("\"mode\": \"group+elr\""), "{json}");
        assert!(json.contains("\"mean_group\": 6.250"), "{json}");
        assert!(json.contains("\"elr_releases\": 250"), "{json}");
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close} in {json}"
            );
        }
    }

    #[test]
    fn recover_summary_renders_valid_json_shape() {
        let summary = RecoverSummary {
            branches: 8,
            txns_per_cell: 3_000,
            stream_points: vec![1, 4],
            rows: vec![
                RecoverRow {
                    streams: 1,
                    workers: 1,
                    txns: 3_000,
                    records: 12_000,
                    delta_records: 6_000,
                    serial_ms: 40.0,
                    parallel_ms: 40.0,
                    checkpoint_ms: 22.0,
                },
                RecoverRow {
                    streams: 4,
                    workers: 4,
                    txns: 3_000,
                    records: 12_000,
                    delta_records: 6_000,
                    serial_ms: 40.0,
                    parallel_ms: 10.0,
                    checkpoint_ms: 6.0,
                },
            ],
        };
        let json = summary.to_json();
        assert!(json.contains("\"experiment\": \"recover\""), "{json}");
        assert!(json.contains("\"stream_points\": [1,4]"), "{json}");
        assert!(json.contains("\"speedup\": 4.000"), "{json}");
        assert!(json.contains("\"parallel_tps\": 300000.0"), "{json}");
        assert!(json.contains("\"delta_records\": 6000"), "{json}");
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close} in {json}"
            );
        }
    }

    #[test]
    fn recover_row_derived_metrics_guard_zero_time() {
        let row = RecoverRow {
            streams: 2,
            workers: 2,
            txns: 100,
            records: 400,
            delta_records: 0,
            serial_ms: 0.0,
            parallel_ms: 0.0,
            checkpoint_ms: 0.0,
        };
        assert_eq!(row.parallel_tps(), 0.0);
        assert_eq!(row.speedup(), 0.0);
    }

    #[test]
    fn commit_flush_points_are_nonzero() {
        let scale = micro_scale();
        let points = scale.commit_flush_points();
        assert_eq!(points.len(), 2);
        assert!(points.iter().all(|&p| p > 0));
        assert!(points[1] > points[0]);
    }

    #[test]
    fn dispatch_mode_derived_metrics() {
        let mode = DispatchMode {
            label: "batched",
            tps: 0.0,
            committed: 0,
            aborted: 0,
            actions: 100,
            messages: 120,
            producer_batches: 30,
            inbox_drains: 20,
        };
        assert!((mode.mutex_acquisitions_per_action() - 0.5).abs() < 1e-9);
        assert!((mode.avg_producer_batch() - 4.0).abs() < 1e-9);
        assert!((mode.avg_drain_batch() - 6.0).abs() < 1e-9);
        let zero = DispatchMode {
            actions: 0,
            messages: 0,
            producer_batches: 0,
            inbox_drains: 0,
            ..mode
        };
        // Degenerate runs must not divide by zero.
        assert_eq!(zero.mutex_acquisitions_per_action(), 0.0);
        assert_eq!(zero.avg_producer_batch(), 0.0);
    }

    #[test]
    fn skew_phase_load_ratio_clamps_idle_executors() {
        let phase = SkewPhase {
            label: "static",
            before_tps: 0.0,
            after_tps: 0.0,
            resizes: 0,
            final_loads: vec![100, 0],
        };
        assert_eq!(phase.load_ratio(), 100.0);
        let empty = SkewPhase {
            final_loads: vec![],
            ..phase
        };
        assert_eq!(empty.load_ratio(), 1.0);
    }
}
