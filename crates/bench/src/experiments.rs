//! One function per figure of the paper's evaluation (Section 5 and the
//! appendix). Each sets up the workloads at the requested [`Scale`], drives
//! the baseline and/or DORA engines, and renders the measured series as a
//! plain-text [`Report`]. `EXPERIMENTS.md` records how each measured shape
//! compares to the paper's.

use std::sync::Arc;
use std::time::{Duration, Instant};

use dora_common::config::AdaptiveConfig;
use dora_common::prelude::*;
use dora_core::{DoraConfig, DoraEngine};
use dora_engine::{
    build_engine, find_peak, BaselineEngine, ClientDriver, DoraExecution, DriverConfig,
    ExecutionEngine,
};
use dora_metrics::{global, CounterKind, LatencyHistogram};
use dora_server::{AdmissionConfig, RetryPolicy, Server, ServerConfig, Statement, SubmitOutcome};
use dora_storage::Database;
use dora_workloads::{Tm1Mix, TpcB, Tpcc, TpccMix, Workload, WorkloadStats};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::report::{breakdown_row, pct, txn_stats_table, Report};
use crate::setup::{
    prepare, prepare_with_config, run_clients, sweep, sweep_stats, sweep_with_config, Scale,
    SystemUnderTest,
};
use crate::trace::AccessTrace;

/// Figure 1: TM1-GetSubscriberData — throughput per CPU utilization as the
/// load grows, plus the time breakdown of each system.
pub fn fig1(scale: &Scale) -> Report {
    let mut report = Report::new("Figure 1: TM1-GetSubscriberData, Baseline vs DORA");
    for system in SystemUnderTest::ALL {
        report.line(format!("{}:", system.label()));
        let workload = scale.tm1().with_mix(Tm1Mix::GetSubscriberDataOnly);
        let (results, stats) = sweep_stats(workload, scale, system, &scale.load_points());
        report.line(format!(
            "  {:>10} {:>10} {:>14} {:>16}",
            "load(%)", "cpu(%)", "tps", "tps/cpu-util"
        ));
        for (load, result) in &results {
            report.line(format!(
                "  {:>10.0} {:>10.1} {:>14.0} {:>16.2}",
                load,
                result.cpu_utilization_percent.unwrap_or(*load),
                result.throughput_tps,
                result.throughput_per_cpu_util(),
            ));
        }
        report.line("  time breakdown:");
        for (load, result) in &results {
            report.line(breakdown_row(
                &format!("@{load:.0}% offered"),
                &result.breakdown,
            ));
        }
        report.line("  per-transaction-type summary (all load points):");
        txn_stats_table(&mut report, &stats);
        report.blank();
    }
    report
}

/// Figure 2: time breakdown at full utilization for (a) the TM1 mix and
/// (b) TPC-C OrderStatus, Baseline vs DORA.
pub fn fig2(scale: &Scale) -> Report {
    let mut report = Report::new("Figure 2: time breakdown at 100% CPU utilization");
    for (label, which) in [("TM1 (full mix)", 0), ("TPC-C OrderStatus", 1)] {
        report.line(format!("{label}:"));
        for system in SystemUnderTest::ALL {
            let results = if which == 0 {
                sweep(scale.tm1(), scale, system, &[100.0])
            } else {
                sweep(
                    scale.tpcc().with_mix(TpccMix::OrderStatusOnly),
                    scale,
                    system,
                    &[100.0],
                )
            };
            let (_, result) = &results[0];
            report.line(breakdown_row(system.label(), &result.breakdown));
        }
        report.blank();
    }
    report
}

/// Figure 3: where the time inside the centralized lock manager goes for the
/// baseline running TPC-B, as the load grows.
pub fn fig3(scale: &Scale) -> Report {
    let mut report = Report::new("Figure 3: inside the lock manager (Baseline, TPC-B)");
    let (results, stats) = sweep_stats(
        scale.tpcb(),
        scale,
        SystemUnderTest::Baseline,
        &scale.load_points(),
    );
    report.line(format!(
        "  {:>10} {:>10} {:>12} {:>10} {:>12} {:>10}",
        "load(%)", "acquire", "acquire-cont", "release", "release-cont", "other"
    ));
    for (load, result) in &results {
        let breakdown = &result.breakdown;
        let total = (breakdown.lock_mgr_acquire_nanos
            + breakdown.lock_mgr_acquire_cont_nanos
            + breakdown.lock_mgr_release_nanos
            + breakdown.lock_mgr_release_cont_nanos
            + breakdown.lock_mgr_other_nanos)
            .max(1) as f64;
        report.line(format!(
            "  {:>10.0} {:>10} {:>12} {:>10} {:>12} {:>10}",
            load,
            pct(breakdown.lock_mgr_acquire_nanos as f64 / total),
            pct(breakdown.lock_mgr_acquire_cont_nanos as f64 / total),
            pct(breakdown.lock_mgr_release_nanos as f64 / total),
            pct(breakdown.lock_mgr_release_cont_nanos as f64 / total),
            pct(breakdown.lock_mgr_other_nanos as f64 / total),
        ));
    }
    report.blank();
    report.line("  contention share of lock-manager time:");
    for (load, result) in &results {
        report.kv(
            &format!("@{load:.0}% offered load"),
            pct(result.breakdown.lock_mgr_internal_contention_fraction()),
        );
    }
    report.blank();
    report.line("  per-transaction-type summary (all load points):");
    txn_stats_table(&mut report, &stats);
    report
}

/// Figure 4: the transaction flow graph of TPC-C Payment (structural, not a
/// measurement).
pub fn fig4(scale: &Scale) -> Report {
    let mut report = Report::new("Figure 4: transaction flow graph of TPC-C Payment");
    let db = Database::new(scale.system_config());
    let tpcc = scale.tpcc();
    tpcc.setup(&db).expect("setup TPC-C");
    let graph = tpcc
        .payment_program(
            &db,
            1,
            1,
            1,
            1,
            dora_workloads::tpcc::CustomerSelector::ById(1),
            10.0,
        )
        .expect("payment program")
        .compile_dora();
    for (index, phase) in graph.describe().iter().enumerate() {
        report.line(format!("  phase {}: {}", index + 1, phase.join(", ")));
        if index + 1 < graph.phase_count() {
            report.line(format!("  --- RVP{} ---", index + 1));
        }
    }
    report.line(format!(
        "  --- RVP{} (terminal: commit) ---",
        graph.phase_count()
    ));
    report
}

/// Figure 5: locks acquired per 100 transactions, by class, for TM1, TPC-B
/// and TPC-C OrderStatus under both systems.
pub fn fig5(scale: &Scale) -> Report {
    let mut report = Report::new("Figure 5: locks acquired per 100 transactions");
    report.line(format!(
        "  {:<26} {:<10} {:>12} {:>14} {:>14}",
        "workload", "system", "row-level", "higher-level", "thread-local"
    ));
    let load = [75.0];
    for which in 0..3 {
        for system in SystemUnderTest::ALL {
            let (name, results) = match which {
                0 => ("TM1", sweep(scale.tm1(), scale, system, &load)),
                1 => ("TPC-B", sweep(scale.tpcb(), scale, system, &load)),
                _ => (
                    "TPC-C OrderStatus",
                    sweep(
                        scale.tpcc().with_mix(TpccMix::OrderStatusOnly),
                        scale,
                        system,
                        &load,
                    ),
                ),
            };
            let (_, result) = &results[0];
            let (row, higher, local) = result.locks_per_100_txns();
            report.line(format!(
                "  {:<26} {:<10} {:>12.0} {:>14.0} {:>14.0}",
                name,
                system.label(),
                row,
                higher,
                local
            ));
        }
    }
    report
}

/// Figure 6: throughput as the offered CPU load grows (including past
/// saturation) for TM1, TPC-B and TPC-C OrderStatus.
pub fn fig6(scale: &Scale) -> Report {
    let mut report = Report::new("Figure 6: throughput vs offered CPU load");
    for which in 0..3 {
        let name = ["TM1", "TPC-B", "TPC-C OrderStatus"][which];
        report.line(format!("{name}:"));
        report.line(format!(
            "  {:>10} {:>16} {:>16}",
            "load(%)", "Baseline tps", "DORA tps"
        ));
        let mut series: Vec<Vec<(f64, f64)>> = Vec::new();
        let mut per_type: Vec<(&'static str, WorkloadStats)> = Vec::new();
        for system in SystemUnderTest::ALL {
            let (results, stats) = match which {
                0 => sweep_stats(scale.tm1(), scale, system, &scale.load_points()),
                1 => sweep_stats(scale.tpcb(), scale, system, &scale.load_points()),
                _ => sweep_stats(
                    scale.tpcc().with_mix(TpccMix::OrderStatusOnly),
                    scale,
                    system,
                    &scale.load_points(),
                ),
            };
            series.push(
                results
                    .iter()
                    .map(|(load, r)| (*load, r.throughput_tps))
                    .collect(),
            );
            per_type.push((system.label(), stats));
        }
        for (index, load) in scale.load_points().iter().enumerate() {
            report.line(format!(
                "  {:>10.0} {:>16.0} {:>16.0}",
                load, series[0][index].1, series[1][index].1
            ));
        }
        for (label, stats) in &per_type {
            report.line(format!("  {label} per-transaction-type summary:"));
            txn_stats_table(&mut report, stats);
        }
        report.blank();
    }
    report
}

/// Figure 7: single-client response times (intra-transaction parallelism).
pub fn fig7(scale: &Scale) -> Report {
    let mut report = Report::new("Figure 7: single-client response time (normalized to Baseline)");
    report.line(format!(
        "  {:<26} {:>16} {:>16} {:>12}",
        "transaction", "Baseline (us)", "DORA (us)", "DORA/Base"
    ));
    let iterations = if scale.duration.as_millis() > 500 {
        400
    } else {
        100
    };

    // (label, workload constructor shared by every engine)
    type WorkloadFactory = Box<dyn Fn() -> Box<dyn Workload>>;
    let cases: Vec<(&str, WorkloadFactory)> = vec![
        (
            "TM1 GetSubscriberData",
            Box::new({
                let scale = scale.clone();
                move || Box::new(scale.tm1().with_mix(Tm1Mix::GetSubscriberDataOnly))
            }),
        ),
        (
            "TPC-C Payment",
            Box::new({
                let scale = scale.clone();
                move || Box::new(scale.tpcc().with_mix(TpccMix::PaymentOnly))
            }),
        ),
        (
            "TPC-C OrderStatus",
            Box::new({
                let scale = scale.clone();
                move || Box::new(scale.tpcc().with_mix(TpccMix::OrderStatusOnly))
            }),
        ),
        (
            "TPC-C NewOrder",
            Box::new({
                let scale = scale.clone();
                move || Box::new(scale.tpcc().with_mix(TpccMix::NewOrderOnly))
            }),
        ),
        (
            "TPC-B",
            Box::new({
                let scale = scale.clone();
                move || Box::new(scale.tpcb())
            }),
        ),
    ];

    for (label, make) in cases {
        let driver = ClientDriver::new(DriverConfig {
            clients: 1,
            duration: scale.duration,
            warmup: scale.warmup,
            hardware_contexts: scale.hardware_contexts,
        });
        // One fresh database + bound engine per registered architecture; the
        // measurement itself goes through the unified ExecutionEngine seam.
        let mean_us: Vec<f64> = SystemUnderTest::ALL
            .into_iter()
            .map(|system| {
                let db = Database::new(scale.system_config());
                let workload: Arc<dyn Workload> = Arc::from(make());
                workload.setup(&db).expect("setup");
                let engine = build_engine(system, Arc::clone(&db));
                engine
                    .bind(workload, scale.executors_per_table)
                    .expect("bind");
                let latency = driver.measure_engine(iterations, engine.as_ref());
                engine.shutdown();
                latency.mean().as_micros() as f64
            })
            .collect();

        let base_us = mean_us[0];
        let dora_us = mean_us[mean_us.len() - 1];
        report.line(format!(
            "  {:<26} {:>16.0} {:>16.0} {:>12.2}",
            label,
            base_us,
            dora_us,
            dora_us / base_us.max(1.0)
        ));
    }
    report
}

/// Figure 8: peak throughput under perfect admission control, with the CPU
/// utilization at which the peak is reached.
pub fn fig8(scale: &Scale) -> Report {
    let mut report = Report::new("Figure 8: peak throughput under perfect admission control");
    report.line(format!(
        "  {:<26} {:<10} {:>12} {:>14} {:>18}",
        "workload", "system", "peak tps", "norm. to base", "cpu util at peak"
    ));
    for which in 0..3 {
        let name = ["TM1", "TPC-B", "TPC-C OrderStatus"][which];
        let mut base_peak = 0.0;
        for system in SystemUnderTest::ALL {
            let prepared = match which {
                0 => prepare(scale.tm1(), scale, system),
                1 => prepare(scale.tpcb(), scale, system),
                _ => prepare(
                    scale.tpcc().with_mix(TpccMix::OrderStatusOnly),
                    scale,
                    system,
                ),
            };
            let client_counts: Vec<usize> = scale
                .load_points()
                .iter()
                .map(|&p| scale.clients_for(p))
                .collect();
            let peak = find_peak(&client_counts, |clients| {
                run_clients(&prepared, scale, clients)
            });
            prepared.shutdown();
            // The first registered engine is the normalization base (the
            // paper normalizes to the conventional system).
            if base_peak == 0.0 {
                base_peak = peak.best_tps;
            }
            report.line(format!(
                "  {:<26} {:<10} {:>12.0} {:>14.2} {:>17.0}%",
                name,
                system.label(),
                peak.best_tps,
                peak.best_tps / base_peak.max(1.0),
                peak.cpu_utilization_at_peak
                    .unwrap_or(peak.offered_load_at_peak()),
            ));
        }
    }
    report
}

/// Figure 10: the District access trace under thread-to-transaction vs
/// thread-to-data assignment (TPC-C Payment, 10 warehouses).
pub fn fig10(scale: &Scale) -> Report {
    let mut report = Report::new("Figure 10: District access patterns (TPC-C Payment)");
    let warehouses = 10i64.min(scale.tpcc_warehouses.max(2));
    let districts = (warehouses * 10) as usize;
    let threads = 10usize;
    let tpcc = Tpcc::with_scale(
        warehouses,
        scale.tpcc_customers_per_district,
        scale.tpcc_items,
    )
    .with_mix(TpccMix::PaymentOnly);

    // Conventional (thread-to-transaction): any worker thread updates any
    // district.
    let db = Database::new(scale.system_config());
    tpcc.setup(&db).expect("setup");
    let baseline = BaselineEngine::new(Arc::clone(&db));
    let trace_baseline = AccessTrace::new();
    let tpcc = Arc::new(tpcc);
    let driver = ClientDriver::new(DriverConfig {
        clients: threads,
        duration: scale.duration,
        warmup: std::time::Duration::from_millis(0),
        hardware_contexts: scale.hardware_contexts,
    });
    {
        let tpcc = Arc::clone(&tpcc);
        let trace = trace_baseline.clone();
        let baseline = baseline.clone();
        driver.run(move |client, rng| {
            let (w_id, d_id, c_w_id, c_d_id, selector, amount) = tpcc.payment_inputs(rng);
            trace.record(client, ((w_id - 1) * 10 + (d_id - 1)) as usize);
            match tpcc
                .payment_program(baseline.db(), w_id, d_id, c_w_id, c_d_id, selector, amount)
                .and_then(|program| baseline.execute_program(program))
            {
                Ok(outcome) => outcome.into(),
                Err(_) => dora_engine::TxnOutcome::Aborted,
            }
        });
    }

    // DORA (thread-to-data): the district's executor — determined by the
    // routing rule — performs the access.
    let db = Database::new(scale.system_config());
    let tpcc_dora = Tpcc::with_scale(
        warehouses,
        scale.tpcc_customers_per_district,
        scale.tpcc_items,
    )
    .with_mix(TpccMix::PaymentOnly);
    tpcc_dora.setup(&db).expect("setup");
    let dora = Arc::new(DoraEngine::new(Arc::clone(&db), DoraConfig::default()));
    // Ten executors on the District table so the comparison uses the same
    // number of "threads" as the conventional run, like the paper's figure.
    let tpcc_dora = Arc::new(tpcc_dora);
    tpcc_dora
        .bind_dora(&dora, threads.min(scale.executors_per_table.max(2)))
        .expect("bind");
    let district_table = db.table_id("district").expect("district table");
    let trace_dora = AccessTrace::new();
    {
        let tpcc = Arc::clone(&tpcc_dora);
        let trace = trace_dora.clone();
        let dora = Arc::clone(&dora);
        let routing = dora.routing().rule(district_table).expect("district rule");
        driver.run(move |_client, rng| {
            let (w_id, d_id, c_w_id, c_d_id, selector, amount) = tpcc.payment_inputs(rng);
            let executor = routing.route(&Key::int2(w_id, d_id)).unwrap_or(0);
            trace.record(executor, ((w_id - 1) * 10 + (d_id - 1)) as usize);
            match dora.execute(
                tpcc.payment_program(dora.db(), w_id, d_id, c_w_id, c_d_id, selector, amount)
                    .expect("program")
                    .compile_dora(),
            ) {
                Ok(()) => dora_engine::TxnOutcome::Committed,
                Err(_) => dora_engine::TxnOutcome::Aborted,
            }
        });
    }
    dora.shutdown();

    report.line(format!(
        "  {} district records, {} worker threads, {} executor threads",
        districts,
        threads,
        dora.executor_count(district_table)
    ));
    report.blank();
    report.line("(a) thread-to-transaction (conventional): accesses per thread x district");
    report.line(trace_baseline.render_heatmap(threads, districts));
    report.line(format!(
        "    distinct districts touched per thread: {:?}",
        trace_baseline.distinct_districts_per_thread(threads, districts)
    ));
    report.blank();
    report.line("(b) thread-to-data (DORA): accesses per executor x district");
    let executor_threads = dora.executor_count(district_table).max(1);
    report.line(trace_dora.render_heatmap(executor_threads, districts));
    report.line(format!(
        "    distinct districts touched per executor: {:?}",
        trace_dora.distinct_districts_per_thread(executor_threads, districts)
    ));
    report
}

/// Figure 11: TM1-UpdateSubscriberData (a transaction with a ~37.5% abort
/// rate): Baseline vs the parallel (DORA-P) and serialized (DORA-S) plans.
pub fn fig11(scale: &Scale) -> Report {
    let mut report = Report::new("Figure 11: TM1-UpdateSubscriberData with a high abort rate");
    report.line(format!(
        "  {:>10} {:>16} {:>16} {:>16}",
        "load(%)", "Baseline tps", "DORA-P tps", "DORA-S tps"
    ));
    let loads = scale.load_points();
    // The plans are hand-picked here — DORA-P *must* stay parallel — so the
    // conflict analyzer's auto-serialization (which would turn the high-abort
    // UpdateSubscriberData program into DORA-S on its own) is switched off
    // for all three arms.
    let hand_picked = DoraConfig {
        conflict_elision: false,
        ..DoraConfig::default()
    };
    let baseline = sweep_with_config(
        scale.tm1().with_mix(Tm1Mix::UpdateSubscriberDataOnly),
        scale,
        SystemUnderTest::Baseline,
        &loads,
        hand_picked.clone(),
    );
    let dora_p = sweep_with_config(
        scale
            .tm1()
            .with_mix(Tm1Mix::UpdateSubscriberDataOnly)
            .with_serial_update_plan(false),
        scale,
        SystemUnderTest::Dora,
        &loads,
        hand_picked.clone(),
    );
    let dora_s = sweep_with_config(
        scale
            .tm1()
            .with_mix(Tm1Mix::UpdateSubscriberDataOnly)
            .with_serial_update_plan(true),
        scale,
        SystemUnderTest::Dora,
        &loads,
        hand_picked,
    );
    for (index, load) in loads.iter().enumerate() {
        report.line(format!(
            "  {:>10.0} {:>16.0} {:>16.0} {:>16.0}",
            load,
            baseline[index].1.throughput_tps,
            dora_p[index].1.throughput_tps,
            dora_s[index].1.throughput_tps
        ));
    }
    report.blank();
    report.kv(
        "observed abort rate (Baseline, peak load)",
        pct(baseline.last().map(|(_, r)| r.abort_rate()).unwrap_or(0.0)),
    );
    report
}

/// One phase of the adaptive-repartitioning experiment: two back-to-back
/// driver intervals on one engine, so "before" captures the cold routing
/// rule and "after" captures whatever the adaptive controller converged to
/// during the first interval.
#[derive(Debug, Clone)]
pub struct SkewPhase {
    /// Scenario label ("static" / "adaptive" / with "+drift").
    pub label: &'static str,
    /// Committed tps over the first interval (cold rule).
    pub before_tps: f64,
    /// Committed tps over the second interval.
    pub after_tps: f64,
    /// Resizes the adaptive controller drove (0 for static phases).
    pub resizes: u64,
    /// Actions served per executor during the second interval only.
    pub final_loads: Vec<u64>,
}

impl SkewPhase {
    /// Busiest over least-busy executor across the final interval (idle
    /// executors count as one action so the ratio stays finite).
    pub fn load_ratio(&self) -> f64 {
        let max = self.final_loads.iter().copied().max().unwrap_or(0).max(1);
        let min = self.final_loads.iter().copied().min().unwrap_or(0).max(1);
        max as f64 / min as f64
    }
}

/// Everything the skew experiment measured; serialized to `BENCH_skew.json`
/// by the CI bench-smoke job so the perf trajectory is tracked per PR.
#[derive(Debug, Clone)]
pub struct SkewSummary {
    /// Zipfian skew parameter.
    pub theta: f64,
    /// Counter rows.
    pub keys: i64,
    /// Executors on the counters table.
    pub executors: usize,
    /// Client threads driving load.
    pub clients: usize,
    /// Measured interval length per driver run, in milliseconds.
    pub interval_ms: u64,
    /// The four phases: static/adaptive × fixed/drifting hot range.
    pub phases: Vec<SkewPhase>,
}

impl SkewSummary {
    /// Renders the summary as a small JSON document (the workspace has no
    /// serde; the fields are all numbers, so hand-rolling is safe).
    pub fn to_json(&self) -> String {
        let phases = self
            .phases
            .iter()
            .map(|phase| {
                let loads = phase
                    .final_loads
                    .iter()
                    .map(|l| l.to_string())
                    .collect::<Vec<_>>()
                    .join(",");
                format!(
                    concat!(
                        "    {{\"label\": \"{}\", \"before_tps\": {:.1}, ",
                        "\"after_tps\": {:.1}, \"resizes\": {}, ",
                        "\"final_loads\": [{}], \"load_ratio\": {:.3}}}"
                    ),
                    phase.label,
                    phase.before_tps,
                    phase.after_tps,
                    phase.resizes,
                    loads,
                    phase.load_ratio(),
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            concat!(
                "{{\n  \"experiment\": \"skew\",\n  \"theta\": {},\n",
                "  \"keys\": {},\n  \"executors\": {},\n  \"clients\": {},\n",
                "  \"interval_ms\": {},\n  \"phases\": [\n{}\n  ]\n}}\n"
            ),
            self.theta, self.keys, self.executors, self.clients, self.interval_ms, phases
        )
    }
}

fn run_skew_phase(
    scale: &Scale,
    label: &'static str,
    drift: Option<(u64, i64)>,
    adaptive: bool,
) -> SkewPhase {
    let db = Database::new(scale.system_config());
    let mut workload = scale.skewed();
    if let Some((every, step)) = drift {
        workload = workload.with_drift(every, step);
    }
    workload.setup(&db).expect("setup skewed workload");
    let workload: Arc<dyn Workload> = Arc::new(workload);

    let mut config = DoraConfig::default();
    if adaptive {
        config.adaptive = AdaptiveConfig::eager();
    }
    let executors = scale.executors_per_table.max(2);
    let execution = Arc::new(DoraExecution::new(Arc::new(DoraEngine::new(
        Arc::clone(&db),
        config,
    ))));
    execution
        .bind(Arc::clone(&workload), executors)
        .expect("bind skewed workload");
    let table = db.table_id("skewed_counters").expect("counters table");

    let clients = scale.clients_for(75.0);
    let driver = ClientDriver::new(DriverConfig {
        clients,
        duration: scale.duration,
        warmup: scale.warmup,
        hardware_contexts: scale.hardware_contexts,
    });
    let engine_dyn: Arc<dyn ExecutionEngine> = Arc::clone(&execution) as _;
    let before = driver.run_engine(Arc::clone(&engine_dyn));
    // The second run reuses the already-warm engine with no warm-up of its
    // own, so the load delta around it is exactly the final interval.
    let after_driver = ClientDriver::new(DriverConfig {
        warmup: std::time::Duration::ZERO,
        ..driver.config().clone()
    });
    let loads_mark = execution.dora().executor_loads(table).expect("loads");
    let after = after_driver.run_engine(engine_dyn);
    let loads_end = execution.dora().executor_loads(table).expect("loads");
    let resizes = execution.adaptive_resizes();
    execution.shutdown();

    SkewPhase {
        label,
        before_tps: before.throughput_tps,
        after_tps: after.throughput_tps,
        resizes,
        final_loads: loads_end
            .iter()
            .zip(&loads_mark)
            .map(|(end, mark)| end.saturating_sub(*mark))
            .collect(),
    }
}

/// The adaptive-repartitioning experiment: a zipfian workload (θ from
/// [`Scale::zipf_theta`]) run on DORA with a static even-range rule vs. the
/// adaptive controller, each for a fixed and a drifting hot range. Not a
/// paper figure — this probes the Appendix A.2.1 machinery the paper only
/// sketches — so it reports before/after throughput and the per-executor
/// load spread instead of mirroring a printed plot.
pub fn skew(scale: &Scale) -> Report {
    skew_with_summary(scale).0
}

/// [`skew`], also returning the machine-readable summary.
pub fn skew_with_summary(scale: &Scale) -> (Report, SkewSummary) {
    // Drift fast enough that the hot range moves several times per measured
    // interval even at quick scale.
    let drift = Some((1_000, (scale.skew_keys / 4).max(1)));
    let phases = vec![
        run_skew_phase(scale, "static", None, false),
        run_skew_phase(scale, "adaptive", None, true),
        run_skew_phase(scale, "static+drift", drift, false),
        run_skew_phase(scale, "adaptive+drift", drift, true),
    ];
    let summary = SkewSummary {
        theta: scale.zipf_theta,
        keys: scale.skew_keys,
        executors: scale.executors_per_table.max(2),
        clients: scale.clients_for(75.0),
        interval_ms: scale.duration.as_millis() as u64,
        phases,
    };

    let mut report = Report::new(format!(
        "Skew: adaptive repartitioning under zipfian load (theta={})",
        summary.theta
    ));
    report.line(format!(
        "  {} keys, {} executors, {} clients, {} ms per interval",
        summary.keys, summary.executors, summary.clients, summary.interval_ms
    ));
    report.blank();
    report.line(format!(
        "  {:<16} {:>12} {:>12} {:>9} {:>12}  final loads",
        "scenario", "before tps", "after tps", "resizes", "load ratio"
    ));
    for phase in &summary.phases {
        report.line(format!(
            "  {:<16} {:>12.0} {:>12.0} {:>9} {:>12.2}  {:?}",
            phase.label,
            phase.before_tps,
            phase.after_tps,
            phase.resizes,
            phase.load_ratio(),
            phase.final_loads,
        ));
    }
    report.blank();
    report.line("  (load ratio = busiest/least-busy executor over the final interval;");
    report.line("   the adaptive rows should show >=1 resize and a ratio near 1)");
    (report, summary)
}

/// One mode of the `dispatch` experiment: the fan-out workload driven with
/// the executor message path either per-message or batched.
#[derive(Debug, Clone)]
pub struct DispatchMode {
    /// Mode label ("per-message" / "batched").
    pub label: &'static str,
    /// Committed tps over the measured interval.
    pub tps: f64,
    /// Transactions committed.
    pub committed: u64,
    /// Transactions aborted (per-message mode may abort deadlock victims —
    /// its dispatches are not latched atomically).
    pub aborted: u64,
    /// DORA actions executed.
    pub actions: u64,
    /// Messages pushed to executor inboxes.
    pub messages: u64,
    /// Producer-side inbox lock acquisitions (one may carry many messages).
    pub producer_batches: u64,
    /// Consumer-side inbox lock acquisitions that yielded work.
    pub inbox_drains: u64,
}

impl DispatchMode {
    /// Inbox-mutex acquisitions (producer + consumer side) per executed
    /// action — the figure of merit: batching must push this well below the
    /// per-message mode's ~2.
    pub fn mutex_acquisitions_per_action(&self) -> f64 {
        (self.producer_batches + self.inbox_drains) as f64 / self.actions.max(1) as f64
    }

    /// Average messages per producer-side push.
    pub fn avg_producer_batch(&self) -> f64 {
        self.messages as f64 / self.producer_batches.max(1) as f64
    }

    /// Average messages per consumer-side drain.
    pub fn avg_drain_batch(&self) -> f64 {
        self.messages as f64 / self.inbox_drains.max(1) as f64
    }
}

/// Everything the `dispatch` experiment measured; serialized to
/// `BENCH_dispatch.json` by the CI bench-smoke job.
#[derive(Debug, Clone)]
pub struct DispatchSummary {
    /// Counter rows.
    pub keys: i64,
    /// Actions per transaction (the phase's fan-out).
    pub fanout: usize,
    /// Executors on the counters table.
    pub executors: usize,
    /// Client threads driving load.
    pub clients: usize,
    /// Measured interval length, in milliseconds.
    pub interval_ms: u64,
    /// The measured modes, per-message first.
    pub modes: Vec<DispatchMode>,
}

impl DispatchSummary {
    /// Renders the summary as a small JSON document (the workspace has no
    /// serde; the fields are all numbers, so hand-rolling is safe).
    pub fn to_json(&self) -> String {
        let modes = self
            .modes
            .iter()
            .map(|mode| {
                format!(
                    concat!(
                        "    {{\"label\": \"{}\", \"tps\": {:.1}, ",
                        "\"committed\": {}, \"aborted\": {}, \"actions\": {}, ",
                        "\"messages\": {}, \"producer_batches\": {}, ",
                        "\"inbox_drains\": {}, \"mutex_acq_per_action\": {:.4}, ",
                        "\"avg_producer_batch\": {:.3}, \"avg_drain_batch\": {:.3}}}"
                    ),
                    mode.label,
                    mode.tps,
                    mode.committed,
                    mode.aborted,
                    mode.actions,
                    mode.messages,
                    mode.producer_batches,
                    mode.inbox_drains,
                    mode.mutex_acquisitions_per_action(),
                    mode.avg_producer_batch(),
                    mode.avg_drain_batch(),
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            concat!(
                "{{\n  \"experiment\": \"dispatch\",\n  \"keys\": {},\n",
                "  \"fanout\": {},\n  \"executors\": {},\n  \"clients\": {},\n",
                "  \"interval_ms\": {},\n  \"modes\": [\n{}\n  ]\n}}\n"
            ),
            self.keys, self.fanout, self.executors, self.clients, self.interval_ms, modes
        )
    }
}

fn run_dispatch_mode(scale: &Scale, label: &'static str, batched: bool) -> DispatchMode {
    let db = Database::new(scale.system_config());
    let workload = scale.fanout();
    workload.setup(&db).expect("setup fanout workload");
    let workload: Arc<dyn Workload> = Arc::new(workload);

    let config = DoraConfig {
        message_batching: batched,
        ..DoraConfig::default()
    };
    // High executor count: the fan-out workload's point is many partitions,
    // so it gets at least four executors even at quick scale.
    let executors = scale.executors_per_table.max(4);
    let execution = Arc::new(DoraExecution::new(Arc::new(DoraEngine::new(
        Arc::clone(&db),
        config,
    ))));
    execution
        .bind(Arc::clone(&workload), executors)
        .expect("bind fanout workload");

    let driver = ClientDriver::new(DriverConfig {
        clients: scale.clients_for(100.0),
        duration: scale.duration,
        warmup: scale.warmup,
        hardware_contexts: scale.hardware_contexts,
    });
    let result = driver.run_engine(Arc::clone(&execution) as _);
    execution.shutdown();

    // The metric deltas cover exactly the measured interval; experiments run
    // sequentially, so the executor-path counters are attributable to this
    // engine.
    DispatchMode {
        label,
        tps: result.throughput_tps,
        committed: result.committed,
        aborted: result.aborted,
        actions: result.metrics.counter(CounterKind::ActionsExecuted),
        messages: result.metrics.counter(CounterKind::DoraMessages),
        producer_batches: result.metrics.counter(CounterKind::DispatchBatches),
        inbox_drains: result.metrics.counter(CounterKind::InboxDrains),
    }
}

/// The message-path experiment: the high-fan-out counters workload run with
/// the executor message path per-message vs. batched. Not a paper figure —
/// it quantifies the "additional inter-core communication" the appendix
/// names as DORA's cost, and how far batching (amortized dispatch,
/// drain-style dequeue) pushes it down. The mutex-acquisitions-per-action
/// column is counter-derived, not sampled.
pub fn dispatch(scale: &Scale) -> Report {
    dispatch_with_summary(scale).0
}

/// [`dispatch`], also returning the machine-readable summary.
pub fn dispatch_with_summary(scale: &Scale) -> (Report, DispatchSummary) {
    let modes = vec![
        run_dispatch_mode(scale, "per-message", false),
        run_dispatch_mode(scale, "batched", true),
    ];
    let summary = DispatchSummary {
        keys: scale.fanout_keys,
        fanout: scale.fanout_actions,
        executors: scale.executors_per_table.max(4),
        clients: scale.clients_for(100.0),
        interval_ms: scale.duration.as_millis() as u64,
        modes,
    };

    let mut report = Report::new("Dispatch: executor message path, per-message vs batched");
    report.line(format!(
        "  {} keys, {} actions/txn, {} executors, {} clients, {} ms per interval",
        summary.keys, summary.fanout, summary.executors, summary.clients, summary.interval_ms
    ));
    report.blank();
    report.line(format!(
        "  {:<12} {:>10} {:>8} {:>10} {:>12} {:>12} {:>12}",
        "mode", "tps", "aborts", "actions", "locks/actn", "push batch", "drain batch"
    ));
    for mode in &summary.modes {
        report.line(format!(
            "  {:<12} {:>10.0} {:>8} {:>10} {:>12.3} {:>12.2} {:>12.2}",
            mode.label,
            mode.tps,
            mode.aborted,
            mode.actions,
            mode.mutex_acquisitions_per_action(),
            mode.avg_producer_batch(),
            mode.avg_drain_batch(),
        ));
    }
    report.blank();
    if let [before, after] = &summary.modes[..] {
        report.kv(
            "throughput batched/per-message",
            format!("{:.2}x", after.tps / before.tps.max(1.0)),
        );
        report.kv(
            "lock acquisitions per action",
            format!(
                "{:.3} -> {:.3}",
                before.mutex_acquisitions_per_action(),
                after.mutex_acquisitions_per_action()
            ),
        );
    }
    report.line("  (locks/actn = producer pushes + consumer drains per executed action;");
    report.line("   per-message mode pays ~2, batching amortizes both sides)");
    (report, summary)
}

/// One cell of the `commit` durability experiment: one engine × one commit
/// mode × one simulated log-device latency.
#[derive(Debug, Clone)]
pub struct CommitRow {
    /// Engine label ("Baseline" / "DORA").
    pub engine: &'static str,
    /// Commit-mode label ("sync" / "group" / "group+elr").
    pub mode: &'static str,
    /// Simulated log-device latency in microseconds.
    pub flush_us: u64,
    /// Log streams the WAL was partitioned into (1 = the classic single
    /// serial log).
    pub streams: usize,
    /// Committed tps over the measured interval.
    pub tps: f64,
    /// Transactions committed.
    pub committed: u64,
    /// Device writes the flusher daemon performed (0 in sync mode; the
    /// whole run, warm-up included).
    pub flush_groups: u64,
    /// Mean commit records hardened per flusher device write.
    pub mean_group: f64,
    /// Largest flush group observed.
    pub max_group: u64,
    /// Transactions whose locks were released before durability.
    pub elr_releases: u64,
    /// Mean client-visible commit wait, in microseconds.
    pub commit_wait_us: f64,
    /// Mean client latency (execute + commit), in microseconds.
    pub latency_us: f64,
}

/// Everything the `commit` experiment measured; serialized to
/// `BENCH_commit.json` by the CI bench-smoke job.
#[derive(Debug, Clone)]
pub struct CommitSummary {
    /// TPC-B branches / accounts-per-branch driving the log pressure.
    pub branches: i64,
    /// Client threads driving load.
    pub clients: usize,
    /// Measured interval length, in milliseconds.
    pub interval_ms: u64,
    /// The swept simulated device latencies, in microseconds.
    pub flush_points: Vec<u64>,
    /// The swept log-stream counts (the partitioned-WAL axis).
    pub stream_points: Vec<usize>,
    /// One row per engine × mode × device latency × stream count.
    pub rows: Vec<CommitRow>,
}

impl CommitSummary {
    /// Renders the summary as a small JSON document (the workspace has no
    /// serde; the fields are all numbers, so hand-rolling is safe).
    pub fn to_json(&self) -> String {
        let rows = self
            .rows
            .iter()
            .map(|row| {
                format!(
                    concat!(
                        "    {{\"engine\": \"{}\", \"mode\": \"{}\", ",
                        "\"flush_us\": {}, \"streams\": {}, \"tps\": {:.1}, \"committed\": {}, ",
                        "\"flush_groups\": {}, \"mean_group\": {:.3}, ",
                        "\"max_group\": {}, \"elr_releases\": {}, ",
                        "\"commit_wait_us\": {:.1}, \"latency_us\": {:.1}}}"
                    ),
                    row.engine,
                    row.mode,
                    row.flush_us,
                    row.streams,
                    row.tps,
                    row.committed,
                    row.flush_groups,
                    row.mean_group,
                    row.max_group,
                    row.elr_releases,
                    row.commit_wait_us,
                    row.latency_us,
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        let points = self
            .flush_points
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let stream_points = self
            .stream_points
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(",");
        format!(
            concat!(
                "{{\n  \"experiment\": \"commit\",\n  \"branches\": {},\n",
                "  \"clients\": {},\n  \"interval_ms\": {},\n",
                "  \"flush_points\": [{}],\n  \"stream_points\": [{}],\n",
                "  \"rows\": [\n{}\n  ]\n}}\n"
            ),
            self.branches, self.clients, self.interval_ms, points, stream_points, rows
        )
    }
}

/// The three commit modes the durability experiment compares.
fn commit_modes() -> [(&'static str, dora_common::DurabilityConfig); 3] {
    use dora_common::DurabilityConfig;
    [
        ("sync", DurabilityConfig::sync_commit()),
        ("group", DurabilityConfig::group_commit_only()),
        ("group+elr", DurabilityConfig::default()),
    ]
}

fn run_commit_cell(
    scale: &Scale,
    system: SystemUnderTest,
    mode: &'static str,
    durability: dora_common::DurabilityConfig,
    flush_us: u64,
    streams: usize,
) -> CommitRow {
    let config = dora_common::SystemConfig {
        log_flush_micros: flush_us,
        durability: durability.with_log_streams(streams),
        ..scale.system_config()
    };
    let db = Database::new(config);
    let workload: Arc<dyn Workload> = Arc::new(scale.tpcb());
    workload.setup(&db).expect("setup TPC-B");
    let engine = build_engine(system, Arc::clone(&db));
    engine
        .bind(Arc::clone(&workload), scale.executors_per_table)
        .expect("bind TPC-B");

    let driver = ClientDriver::new(DriverConfig {
        clients: scale.clients_for(100.0),
        duration: scale.duration,
        warmup: scale.warmup,
        hardware_contexts: scale.hardware_contexts,
    });
    let result = driver.run_engine(Arc::clone(&engine));
    engine.shutdown();

    // The group-size histogram is per-database (whole run including
    // warm-up); the counter deltas cover exactly the measured interval.
    let groups = db.log_manager().flush_group_sizes();
    CommitRow {
        engine: system.label(),
        mode,
        flush_us,
        streams,
        tps: result.throughput_tps,
        committed: result.committed,
        flush_groups: groups.count(),
        mean_group: groups.mean(),
        max_group: groups.max(),
        elr_releases: result.metrics.counter(CounterKind::ElrEarlyReleases),
        commit_wait_us: result.mean_commit_wait().as_nanos() as f64 / 1_000.0,
        latency_us: result.latency.mean().as_nanos() as f64 / 1_000.0,
    }
}

/// The durability experiment: TPC-B (one log record stream per transfer)
/// under synchronous commit vs. group commit vs. group commit with early
/// lock release, across simulated log-device latencies, on both engines.
/// Not a paper figure — it probes the Section 5.4 observation that the log
/// becomes the next bottleneck once lock contention is gone, and quantifies
/// how far the flusher daemon and ELR push it back.
pub fn commit(scale: &Scale) -> Report {
    commit_with_summary(scale).0
}

/// [`commit`], also returning the machine-readable summary.
pub fn commit_with_summary(scale: &Scale) -> (Report, CommitSummary) {
    let flush_points = scale.commit_flush_points();
    let stream_points = scale.log_stream_points.clone();
    let mut rows = Vec::new();
    for &flush_us in &flush_points {
        for system in SystemUnderTest::ALL {
            for (mode, durability) in commit_modes() {
                for &streams in &stream_points {
                    rows.push(run_commit_cell(
                        scale,
                        system,
                        mode,
                        durability.clone(),
                        flush_us,
                        streams,
                    ));
                }
            }
        }
    }
    // The partitioned log must not regress the synchronous baseline: sync
    // commit flushes every touched stream from the committing thread itself,
    // so it stays a valid A/B point at every stream count.
    for row in rows.iter().filter(|r| r.mode == "sync") {
        assert!(
            row.committed > 0,
            "{} sync commit produced no transactions with {} log streams",
            row.engine,
            row.streams
        );
    }
    let summary = CommitSummary {
        branches: scale.tpcb_branches,
        clients: scale.clients_for(100.0),
        interval_ms: scale.duration.as_millis() as u64,
        flush_points,
        stream_points,
        rows,
    };

    let mut report = Report::new("Commit: sync vs group commit vs group+ELR (TPC-B)");
    report.line(format!(
        "  {} branches, {} clients, {} ms per interval",
        summary.branches, summary.clients, summary.interval_ms
    ));
    for &flush_us in &summary.flush_points {
        report.blank();
        report.line(format!("  log-device latency {flush_us} us:"));
        report.line(format!(
            "  {:<10} {:<10} {:>8} {:>10} {:>12} {:>10} {:>12} {:>12}",
            "engine", "mode", "streams", "tps", "mean group", "elr", "commit(us)", "latency(us)"
        ));
        for row in summary.rows.iter().filter(|r| r.flush_us == flush_us) {
            report.line(format!(
                "  {:<10} {:<10} {:>8} {:>10.0} {:>12.2} {:>10} {:>12.1} {:>12.1}",
                row.engine,
                row.mode,
                row.streams,
                row.tps,
                row.mean_group,
                row.elr_releases,
                row.commit_wait_us,
                row.latency_us,
            ));
        }
    }
    report.blank();
    report.line("  (mean group = commit records hardened per flusher device write;");
    report.line("   sync mode has no flusher, so its group column reads 0;");
    report.line("   streams = WAL partitions, each with its own flusher daemon)");
    (report, summary)
}

/// One cell of the `recover` experiment: one log-stream count, measured
/// three ways (serial replay, parallel replay, checkpoint + delta).
#[derive(Debug, Clone)]
pub struct RecoverRow {
    /// Log streams the WAL was partitioned into while the workload ran.
    pub streams: usize,
    /// Replay worker threads (= the stream count, so the axis reads as
    /// "recovery parallelism bought by partitioning the log").
    pub workers: usize,
    /// Committed transactions reconstructed by replay.
    pub txns: usize,
    /// Total log records across all streams.
    pub records: usize,
    /// Records past the checkpoint's low-water marks (what checkpoint
    /// recovery replays instead of the whole log).
    pub delta_records: usize,
    /// Single-threaded full-log replay, in milliseconds.
    pub serial_ms: f64,
    /// Parallel full-log replay with `workers` threads, in milliseconds.
    pub parallel_ms: f64,
    /// Checkpoint snapshot + parallel delta replay, in milliseconds.
    pub checkpoint_ms: f64,
}

impl RecoverRow {
    /// Committed transactions replayed per second by the parallel path.
    pub fn parallel_tps(&self) -> f64 {
        if self.parallel_ms <= 0.0 {
            0.0
        } else {
            self.txns as f64 * 1_000.0 / self.parallel_ms
        }
    }

    /// Serial-over-parallel replay time ratio.
    pub fn speedup(&self) -> f64 {
        if self.parallel_ms <= 0.0 {
            0.0
        } else {
            self.serial_ms / self.parallel_ms
        }
    }
}

/// Everything the `recover` experiment measured; serialized to
/// `BENCH_recover.json` by the CI bench-smoke job.
#[derive(Debug, Clone)]
pub struct RecoverSummary {
    /// TPC-B branches generating the log.
    pub branches: i64,
    /// Transactions logged per cell before measuring replay.
    pub txns_per_cell: usize,
    /// The swept log-stream counts.
    pub stream_points: Vec<usize>,
    /// One row per stream count.
    pub rows: Vec<RecoverRow>,
}

impl RecoverSummary {
    /// Renders the summary as a small JSON document (the workspace has no
    /// serde; the fields are all numbers, so hand-rolling is safe).
    pub fn to_json(&self) -> String {
        let rows = self
            .rows
            .iter()
            .map(|row| {
                format!(
                    concat!(
                        "    {{\"streams\": {}, \"workers\": {}, \"txns\": {}, ",
                        "\"records\": {}, \"delta_records\": {}, ",
                        "\"serial_ms\": {:.3}, \"parallel_ms\": {:.3}, ",
                        "\"checkpoint_ms\": {:.3}, \"parallel_tps\": {:.1}, ",
                        "\"speedup\": {:.3}}}"
                    ),
                    row.streams,
                    row.workers,
                    row.txns,
                    row.records,
                    row.delta_records,
                    row.serial_ms,
                    row.parallel_ms,
                    row.checkpoint_ms,
                    row.parallel_tps(),
                    row.speedup(),
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        let points = self
            .stream_points
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(",");
        format!(
            concat!(
                "{{\n  \"experiment\": \"recover\",\n  \"branches\": {},\n",
                "  \"txns_per_cell\": {},\n  \"stream_points\": [{}],\n",
                "  \"rows\": [\n{}\n  ]\n}}\n"
            ),
            self.branches, self.txns_per_cell, points, rows
        )
    }
}

fn run_recover_cell(scale: &Scale, streams: usize) -> RecoverRow {
    // Replay speed is the subject; a simulated device latency would only
    // slow the logging phase down. Reclamation is off because the serial
    // and parallel rows deliberately measure *full-history* replay against
    // the checkpoint path — the cells must all see the same intact log.
    let config = dora_common::SystemConfig {
        log_flush_micros: 0,
        durability: dora_common::DurabilityConfig {
            reclaim_log_at_checkpoint: false,
            ..dora_common::DurabilityConfig::default()
        }
        .with_log_streams(streams),
        ..scale.system_config()
    };
    let db = Database::new(config);
    let workload: Arc<dyn Workload> = Arc::new(scale.tpcb());
    workload.setup(&db).expect("setup TPC-B");
    // DORA drives the log so the appends genuinely spread across the
    // executor-owned streams; at one stream this degenerates to the classic
    // serial WAL and serves as the baseline row.
    let engine = build_engine(SystemUnderTest::Dora, Arc::clone(&db));
    engine
        .bind(Arc::clone(&workload), scale.executors_per_table)
        .expect("bind TPC-B");

    // First half of the transactions, then a fuzzy checkpoint, then the
    // second half — so checkpoint recovery has a real snapshot *and* a real
    // delta to replay.
    let mut rng = SmallRng::seed_from_u64(0x5EC0_4E41 + streams as u64);
    let half = scale.recover_txns / 2;
    for _ in 0..half {
        let _ = engine.execute_one(&mut rng);
    }
    db.log_manager().take_checkpoint();
    for _ in half..scale.recover_txns {
        let _ = engine.execute_one(&mut rng);
    }
    engine.shutdown();

    let log = db.log_manager();
    let records = log.len();
    let txns: std::collections::HashSet<TxnId> =
        log.committed_changes().iter().map(|r| r.txn).collect();
    let delta_records = log
        .checkpoint_snapshot()
        .map(|cp| cp.pending().len() + log.records_after(cp.low_water()).len())
        .unwrap_or(records);

    let fresh_replica = || {
        let fresh = Database::new(scale.system_config());
        workload.create_schema(&fresh).expect("replica schema");
        workload.load(&fresh).expect("replica load");
        fresh
    };
    // Two passes per path, keeping the faster one: the first replay after
    // the logging phase pays one-off allocator and cache warm-up that would
    // otherwise be billed to whichever path happens to run first.
    let time_ms = |replay: &dyn Fn(&Database)| {
        (0..2)
            .map(|_| {
                let replica = fresh_replica();
                let start = Instant::now();
                replay(&replica);
                start.elapsed().as_secs_f64() * 1_000.0
            })
            .fold(f64::INFINITY, f64::min)
    };
    let workers = streams.max(1);
    let serial_ms = time_ms(&|replica| db.recover_into(replica).expect("serial replay"));
    let parallel_ms = time_ms(&|replica| {
        db.recover_into_parallel(replica, workers)
            .expect("parallel replay")
    });
    let checkpoint_ms = time_ms(&|replica| {
        db.recover_checkpoint_into(replica, workers)
            .expect("checkpoint replay")
    });

    RecoverRow {
        streams,
        workers,
        txns: txns.len(),
        records,
        delta_records,
        serial_ms,
        parallel_ms,
        checkpoint_ms,
    }
}

/// The recovery experiment: log a fixed TPC-B transaction count per
/// log-stream count, then measure serial replay vs. parallel replay (one
/// worker per stream) vs. fuzzy-checkpoint + delta replay. Not a paper
/// figure — it quantifies what partitioning the WAL buys at restart: replay
/// parallelism that scales with the stream count, and a checkpoint delta
/// that shrinks the work regardless of parallelism.
pub fn recover(scale: &Scale) -> Report {
    recover_with_summary(scale).0
}

/// [`recover`], also returning the machine-readable summary.
pub fn recover_with_summary(scale: &Scale) -> (Report, RecoverSummary) {
    let stream_points = scale.log_stream_points.clone();
    let rows: Vec<RecoverRow> = stream_points
        .iter()
        .map(|&streams| run_recover_cell(scale, streams))
        .collect();
    let summary = RecoverSummary {
        branches: scale.tpcb_branches,
        txns_per_cell: scale.recover_txns,
        stream_points,
        rows,
    };

    let mut report = Report::new("Recover: parallel log replay over a partitioned WAL (TPC-B)");
    report.line(format!(
        "  {} branches, {} transactions per cell, checkpoint at the midpoint",
        summary.branches, summary.txns_per_cell
    ));
    report.blank();
    report.line(format!(
        "  {:>8} {:>8} {:>8} {:>8} {:>11} {:>13} {:>9} {:>9} {:>12}",
        "streams",
        "workers",
        "txns",
        "records",
        "serial(ms)",
        "parallel(ms)",
        "speedup",
        "ckpt(ms)",
        "replay-tps"
    ));
    for row in &summary.rows {
        report.line(format!(
            "  {:>8} {:>8} {:>8} {:>8} {:>11.2} {:>13.2} {:>8.2}x {:>9.2} {:>12.0}",
            row.streams,
            row.workers,
            row.txns,
            row.records,
            row.serial_ms,
            row.parallel_ms,
            row.speedup(),
            row.checkpoint_ms,
            row.parallel_tps(),
        ));
    }
    report.blank();
    report.line("  (parallel replay shards committed records by page across one worker");
    report.line("   per stream; ckpt = checkpoint snapshot + parallel delta replay)");
    (report, summary)
}

/// One load point of one `saturation` series: outcome tallies and response
/// times for a fixed offered load, as observed by the clients of the
/// serving front-end (`dora-server`).
#[derive(Debug, Clone)]
pub struct SaturationPoint {
    /// Offered load in percent of the hardware contexts.
    pub load_percent: f64,
    /// Closed-loop client threads (one session each).
    pub clients: usize,
    /// Submissions during the measured interval.
    pub submitted: u64,
    /// ... that committed.
    pub committed: u64,
    /// ... that aborted.
    pub aborted: u64,
    /// ... that exhausted the retry budget.
    pub gave_up: u64,
    /// ... that the admission controller shed without running.
    pub shed: u64,
    /// Committed transactions per second.
    pub tps: f64,
    /// Median response time (µs) of executed (non-shed) submissions,
    /// including any time spent queued at the admission gate.
    pub p50_us: u64,
    /// 99th-percentile response time (µs), same population.
    pub p99_us: u64,
}

impl SaturationPoint {
    /// Fraction of submissions shed.
    pub fn shed_rate(&self) -> f64 {
        self.shed as f64 / self.submitted.max(1) as f64
    }
}

/// One system × admission-policy series of the `saturation` experiment.
#[derive(Debug, Clone)]
pub struct SaturationSeries {
    /// Engine label ("Baseline" / "DORA").
    pub system: &'static str,
    /// Whether the admission gate was active.
    pub admission: bool,
    /// One entry per offered-load point, in sweep order.
    pub points: Vec<SaturationPoint>,
}

impl SaturationSeries {
    /// Display label ("DORA+admission").
    pub fn label(&self) -> String {
        if self.admission {
            format!("{}+admission", self.system)
        } else {
            self.system.to_string()
        }
    }

    /// Best committed tps across the sweep.
    pub fn peak_tps(&self) -> f64 {
        self.points.iter().map(|p| p.tps).fold(0.0, f64::max)
    }

    /// Throughput at the last (most oversaturated) point as a fraction of
    /// the peak — the figure of merit: admission control should hold this
    /// near 1.0 while an ungated system degrades.
    pub fn peak_retention(&self) -> f64 {
        match self.points.last() {
            Some(last) => last.tps / self.peak_tps().max(1.0),
            None => 0.0,
        }
    }
}

/// Everything the `saturation` experiment measured; serialized to
/// `BENCH_saturation.json` by the CI bench-smoke job.
#[derive(Debug, Clone)]
pub struct SaturationSummary {
    /// Measured interval length per load point, in milliseconds.
    pub interval_ms: u64,
    /// Hardware contexts the offered load is normalized against.
    pub hardware_contexts: usize,
    /// Execution slots of the admission policy (for the gated series).
    pub max_active: usize,
    /// Queue slots behind them before arrivals are shed.
    pub max_queued: usize,
    /// TPC-B branches.
    pub branches: i64,
    /// The four series: {Baseline, DORA} × admission {off, on}.
    pub series: Vec<SaturationSeries>,
}

impl SaturationSummary {
    /// Renders the summary as a small JSON document (the workspace has no
    /// serde; every field is a number, a bool or a fixed label, so
    /// hand-rolling is safe).
    pub fn to_json(&self) -> String {
        let series = self
            .series
            .iter()
            .map(|series| {
                let points = series
                    .points
                    .iter()
                    .map(|p| {
                        format!(
                            concat!(
                                "        {{\"load_percent\": {}, \"clients\": {}, ",
                                "\"tps\": {:.1}, \"p50_us\": {}, \"p99_us\": {}, ",
                                "\"shed_rate\": {:.4}, \"submitted\": {}, ",
                                "\"committed\": {}, \"aborted\": {}, ",
                                "\"gave_up\": {}, \"shed\": {}}}"
                            ),
                            p.load_percent,
                            p.clients,
                            p.tps,
                            p.p50_us,
                            p.p99_us,
                            p.shed_rate(),
                            p.submitted,
                            p.committed,
                            p.aborted,
                            p.gave_up,
                            p.shed,
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(",\n");
                format!(
                    concat!(
                        "    {{\"label\": \"{}\", \"system\": \"{}\", ",
                        "\"admission\": {}, \"peak_tps\": {:.1}, ",
                        "\"peak_retention\": {:.3}, \"points\": [\n{}\n    ]}}"
                    ),
                    series.label(),
                    series.system,
                    series.admission,
                    series.peak_tps(),
                    series.peak_retention(),
                    points,
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            concat!(
                "{{\n  \"experiment\": \"saturation\",\n  \"interval_ms\": {},\n",
                "  \"hardware_contexts\": {},\n  \"max_active\": {},\n",
                "  \"max_queued\": {},\n  \"branches\": {},\n",
                "  \"series\": [\n{}\n  ]\n}}\n"
            ),
            self.interval_ms,
            self.hardware_contexts,
            self.max_active,
            self.max_queued,
            self.branches,
            series
        )
    }
}

/// Runs one offered-load point against an open server: `clients` closed-loop
/// threads, each on its own session, submitting spec-conformant TPC-B
/// parameter bindings through the prepared template. A client whose submit
/// is shed backs off briefly (a real client would retry later), so shed
/// spinning neither floods the tally nor starves the admitted work.
fn run_saturation_point(
    server: &Arc<Server>,
    statement: &Statement,
    workload: &Arc<TpcB>,
    scale: &Scale,
    load: f64,
    stats: &WorkloadStats,
) -> SaturationPoint {
    use std::sync::atomic::{AtomicBool, Ordering};

    let clients = scale.clients_for(load);
    let recording = Arc::new(AtomicBool::new(false));
    let stop = Arc::new(AtomicBool::new(false));

    let handles: Vec<_> = (0..clients)
        .map(|client| {
            let server = Arc::clone(server);
            let statement = statement.clone();
            let workload = Arc::clone(workload);
            let recording = Arc::clone(&recording);
            let stop = Arc::clone(&stop);
            let stats = stats.clone();
            std::thread::spawn(move || {
                let session = server.session_with_window(1);
                let mut rng = SmallRng::seed_from_u64(0xd07a + client as u64 * 7919 + load as u64);
                let mut tally = [0u64; 5]; // submitted, committed, aborted, gave-up, shed
                let mut latency = LatencyHistogram::new();
                while !stop.load(Ordering::Relaxed) {
                    let (home_branch, _, account, teller, amount) = workload.inputs(&mut rng);
                    let params = vec![
                        Value::Int(home_branch),
                        Value::Int(account),
                        Value::Int(teller),
                        Value::Float(amount),
                    ];
                    let start = Instant::now();
                    let outcome = session.execute_with(&statement, &params);
                    if recording.load(Ordering::Relaxed) {
                        tally[0] += 1;
                        let txn_outcome = match outcome {
                            SubmitOutcome::Committed => {
                                tally[1] += 1;
                                Some(TxnOutcome::Committed)
                            }
                            SubmitOutcome::Aborted => {
                                tally[2] += 1;
                                Some(TxnOutcome::Aborted)
                            }
                            SubmitOutcome::GaveUp => {
                                tally[3] += 1;
                                Some(TxnOutcome::GaveUp)
                            }
                            SubmitOutcome::Shed => {
                                tally[4] += 1;
                                None
                            }
                            // Unreachable in this experiment (no submit
                            // deadline, no fault injection), but accounted
                            // so the tally stays exact if the config grows:
                            // a timed-out submission never ran (like a
                            // shed), a failed one executed (like an abort).
                            SubmitOutcome::TimedOut => {
                                tally[4] += 1;
                                None
                            }
                            SubmitOutcome::Failed => {
                                tally[2] += 1;
                                Some(TxnOutcome::Aborted)
                            }
                        };
                        if let Some(txn_outcome) = txn_outcome {
                            let elapsed = start.elapsed();
                            latency.record(elapsed);
                            stats.record_timed(TpcB::ACCOUNT_UPDATE, txn_outcome, elapsed);
                        }
                    }
                    if outcome == SubmitOutcome::Shed {
                        // A shed client backs off for ~a transaction's worth
                        // of work before retrying; immediate re-submission
                        // would turn the gate itself into the hot spot and
                        // measure the spin, not the admission policy.
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                }
                (tally, latency)
            })
        })
        .collect();

    std::thread::sleep(scale.warmup);
    recording.store(true, Ordering::Relaxed);
    let started = Instant::now();
    std::thread::sleep(scale.duration);
    recording.store(false, Ordering::Relaxed);
    let elapsed = started.elapsed();
    stop.store(true, Ordering::Relaxed);

    let mut totals = [0u64; 5];
    let mut latency = LatencyHistogram::new();
    for handle in handles {
        let (tally, client_latency) = handle.join().expect("saturation client");
        for (total, count) in totals.iter_mut().zip(tally) {
            *total += count;
        }
        latency.merge(&client_latency);
    }

    SaturationPoint {
        load_percent: load,
        clients,
        submitted: totals[0],
        committed: totals[1],
        aborted: totals[2],
        gave_up: totals[3],
        shed: totals[4],
        tps: totals[1] as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_us: latency.percentile(0.50).as_micros() as u64,
        p99_us: latency.percentile(0.99).as_micros() as u64,
    }
}

fn run_saturation_series(
    scale: &Scale,
    system: SystemUnderTest,
    admission: Option<AdmissionConfig>,
    stats: &WorkloadStats,
) -> SaturationSeries {
    let db = Database::new(scale.system_config());
    let tpcb = scale.tpcb();
    tpcb.setup(&db).expect("setup TPC-B");
    let workload = Arc::new(tpcb);

    let server = Server::open(
        Arc::clone(&db),
        Arc::clone(&workload) as Arc<dyn Workload>,
        ServerConfig {
            engine: system,
            executors_per_table: scale.executors_per_table,
            dora: DoraConfig::default(),
            admission,
            session_window: 1,
            submit_deadline: None,
            retry: RetryPolicy::default(),
            snapshot_reads: true,
        },
    )
    .expect("open server");
    let spec = Arc::clone(&workload);
    let statement = server.prepare_template(TpcB::ACCOUNT_UPDATE, move |db, params| {
        match params.as_slice() {
            [Value::Int(branch), Value::Int(account), Value::Int(teller), Value::Float(amount)] => {
                spec.account_update_program(db, *branch, *account, *teller, *amount)
            }
            _ => Err(DbError::InvalidOperation(
                "tpcb binding: [branch, account, teller, amount]".to_string(),
            )),
        }
    });

    let server = Arc::new(server);
    let points = scale
        .saturation_points()
        .iter()
        .map(|&load| run_saturation_point(&server, &statement, &workload, scale, load, stats))
        .collect();
    server.close();

    SaturationSeries {
        system: system.label(),
        admission: admission.is_some(),
        points,
    }
}

/// The overload experiment: TPC-B offered load swept from well under
/// saturation to 2× over it, for {Baseline, DORA} × admission {off, on},
/// driven end-to-end through the `dora-server` front-end (prepared
/// template, one session per client, every submit through the admission
/// gate). The vehicle for the paper's Figure 6 (ungated throughput
/// collapses past saturation) and Figure 8 (admission control holds the
/// peak) claims as *measured* rows rather than narrative.
pub fn saturation(scale: &Scale) -> Report {
    saturation_with_summary(scale).0
}

/// [`saturation`], also returning the machine-readable summary.
pub fn saturation_with_summary(scale: &Scale) -> (Report, SaturationSummary) {
    // One execution slot per hardware context: the gate caps concurrency at
    // the machine's parallelism, which is what "perfect admission control"
    // means operationally. The queue is kept shallow — half the slots — so
    // that at 2x overload arrivals genuinely shed instead of all parking
    // (a queue deeper than the client surplus would hide the shed path).
    let policy = AdmissionConfig {
        max_active: scale.hardware_contexts,
        max_queued: (scale.hardware_contexts / 2).max(1),
    };
    let stats = WorkloadStats::new();
    let mut series = Vec::new();
    for system in SystemUnderTest::ALL {
        for admission in [None, Some(policy)] {
            series.push(run_saturation_series(scale, system, admission, &stats));
        }
    }
    let summary = SaturationSummary {
        interval_ms: scale.duration.as_millis() as u64,
        hardware_contexts: scale.hardware_contexts,
        max_active: policy.max_active,
        max_queued: policy.max_queued,
        branches: scale.tpcb_branches,
        series,
    };

    let mut report = Report::new(
        "Saturation: offered load vs throughput, admission control on/off (TPC-B via dora-server)",
    );
    report.line(format!(
        "  {} hardware contexts, admission policy: {} active / {} queued, {} ms per point",
        summary.hardware_contexts, summary.max_active, summary.max_queued, summary.interval_ms
    ));
    report.blank();
    for series in &summary.series {
        report.line(format!("{}:", series.label()));
        report.line(format!(
            "  {:>10} {:>10} {:>12} {:>10} {:>10} {:>8}",
            "load(%)", "clients", "tps", "p50(us)", "p99(us)", "shed"
        ));
        for point in &series.points {
            report.line(format!(
                "  {:>10.0} {:>10} {:>12.0} {:>10} {:>10} {:>8}",
                point.load_percent,
                point.clients,
                point.tps,
                point.p50_us,
                point.p99_us,
                pct(point.shed_rate()),
            ));
        }
        report.kv(
            "peak tps / retention at 2x overload",
            format!(
                "{:.0} / {}",
                series.peak_tps(),
                pct(series.peak_retention())
            ),
        );
        report.blank();
    }
    report.line("  per-transaction-type summary (all series, executed submissions):");
    txn_stats_table(&mut report, &stats);
    report.blank();
    report.line("  (response times include admission-queue wait; shed submissions are");
    report.line("   excluded from the latency population — they never execute)");
    (report, summary)
}

/// Seed of every chaos run's fault plan. Fixed so the experiment is
/// reproducible: re-running `repro chaos` replays the identical per-site
/// fault schedule (see `FaultPlan`).
pub const CHAOS_SEED: u64 = 0xC4A0_5D07;

/// The fault knobs of one chaos cell. The log-device error and spike sites
/// run at `rate`; flusher stalls and executor panics at a quarter of it
/// (they are per-batch / per-action sites, which fire against far larger
/// populations). Spike and stall magnitudes are pinned to moderate values
/// (a few device-write times, not milliseconds) so the measured gap is the
/// *healing policy* — dead streams vs. retried writes — rather than the
/// injected latency itself, which taxes healed and unhealed series alike.
/// `healing` toggles the storage half of self-healing: with it off, the
/// first failed device write kills its stream for good.
fn chaos_fault_config(rate: f64, healing: bool) -> FaultConfig {
    FaultConfig {
        seed: CHAOS_SEED,
        device_error_rate: rate,
        device_spike_rate: rate,
        device_spike_micros: 100,
        flusher_stall_rate: rate / 4.0,
        flusher_stall_micros: 500,
        executor_panic_rate: rate / 4.0,
        max_write_retries: if healing { 8 } else { 0 },
        ..FaultConfig::default()
    }
}

/// Storage configuration of one chaos cell: the scale's baseline config
/// with the WAL sharded (so a single failed stream is a partial outage,
/// not a total one) and the cell's fault plan installed.
fn chaos_system_config(scale: &Scale, rate: f64, healing: bool) -> SystemConfig {
    let streams = scale.log_stream_points.last().copied().unwrap_or(1);
    SystemConfig {
        durability: DurabilityConfig::default().with_log_streams(streams),
        faults: chaos_fault_config(rate, healing),
        ..scale.system_config()
    }
}

/// One measured cell of the `chaos` experiment: a fixed fault rate driven
/// through the serving front-end, with every submission resolved to exactly
/// one outcome and the fault-path counters recorded alongside.
#[derive(Debug, Clone)]
pub struct ChaosPoint {
    /// Per-write fault probability of the simulated log device (error and
    /// spike sites; stalls and panics run at a quarter of this).
    pub fault_rate: f64,
    /// Closed-loop client threads.
    pub clients: usize,
    /// Submissions during the measured interval.
    pub submitted: u64,
    /// ... that committed durably.
    pub committed: u64,
    /// ... that aborted (after any server-side retries).
    pub aborted: u64,
    /// ... that exhausted the engine's deadlock-retry budget.
    pub gave_up: u64,
    /// ... shed by admission control.
    pub shed: u64,
    /// ... that expired in the admission queue.
    pub timed_out: u64,
    /// ... that committed in memory but lost durability for good (ghost
    /// commits on a permanently failed log stream — never safe to retry).
    pub failed: u64,
    /// Durably committed transactions per second: goodput, not throughput.
    pub goodput_tps: f64,
    /// Median response time (µs) of executed submissions, *including* time
    /// spent in server-side retries and backoff.
    pub p50_us: u64,
    /// 99th-percentile response time (µs), same population.
    pub p99_us: u64,
    /// Faults the plan injected over the whole run (including warm-up).
    pub faults_injected: u64,
    /// Failed device writes the flushers retried (the storage half of
    /// self-healing at work).
    pub flush_retries: u64,
    /// Commit waiters told durability was lost for good.
    pub durability_lost: u64,
    /// Injected panics caught and quarantined by executor supervision.
    pub panics_recovered: u64,
    /// Stalled-flusher nudges by the log watchdog.
    pub watchdog_nudges: u64,
    /// Aborted submissions the sessions re-ran (the serving half of
    /// self-healing at work).
    pub txn_retries: u64,
    /// Post-run consistency: the live database conserves money across
    /// branches/tellers/accounts, and replaying the surviving log into a
    /// fresh replica does too (no torn transactions, even mid-chaos).
    pub consistent: bool,
}

impl ChaosPoint {
    /// Fraction of submissions that ended as unrecoverable ghost commits.
    pub fn failure_rate(&self) -> f64 {
        self.failed as f64 / self.submitted.max(1) as f64
    }
}

/// One system × self-healing series of the `chaos` experiment. The first
/// point is always the fault-free baseline the retention is computed
/// against.
#[derive(Debug, Clone)]
pub struct ChaosSeries {
    /// Engine label ("Baseline" / "DORA").
    pub system: &'static str,
    /// Whether the self-healing paths were on (flusher write retries,
    /// server-side abort retries, submit deadline).
    pub healing: bool,
    /// One entry per fault rate, in sweep order; `points[0]` is fault-free.
    pub points: Vec<ChaosPoint>,
}

impl ChaosSeries {
    /// Display label ("DORA+healing").
    pub fn label(&self) -> String {
        if self.healing {
            format!("{}+healing", self.system)
        } else {
            self.system.to_string()
        }
    }

    /// Goodput of the fault-free point.
    pub fn clean_tps(&self) -> f64 {
        self.points.first().map(|p| p.goodput_tps).unwrap_or(0.0)
    }

    /// `point`'s goodput as a fraction of the fault-free goodput — the
    /// figure of merit: self-healing should hold this near 1.0 at moderate
    /// fault rates while the unhealed system collapses.
    pub fn retention(&self, point: &ChaosPoint) -> f64 {
        point.goodput_tps / self.clean_tps().max(1.0)
    }
}

/// Everything the `chaos` experiment measured; serialized to
/// `BENCH_chaos.json` by the CI bench-smoke job.
#[derive(Debug, Clone)]
pub struct ChaosSummary {
    /// Measured interval length per cell, in milliseconds.
    pub interval_ms: u64,
    /// Closed-loop client threads per cell.
    pub clients: usize,
    /// TPC-B branches.
    pub branches: i64,
    /// Log streams the WAL is sharded into.
    pub log_streams: usize,
    /// The fault plan's seed.
    pub seed: u64,
    /// Fault rates swept (first entry is the fault-free 0.0).
    pub fault_points: Vec<f64>,
    /// Whether two plans built from the same config previewed the identical
    /// per-site decision schedule (the seeded-determinism guarantee).
    pub deterministic: bool,
    /// The four series: {Baseline, DORA} × healing {off, on}.
    pub series: Vec<ChaosSeries>,
}

impl ChaosSummary {
    /// Renders the summary as a small JSON document (hand-rolled like the
    /// other summaries — every field is a number, a bool or a fixed label).
    pub fn to_json(&self) -> String {
        let fault_points = self
            .fault_points
            .iter()
            .map(|r| format!("{r}"))
            .collect::<Vec<_>>()
            .join(",");
        let series = self
            .series
            .iter()
            .map(|series| {
                let points = series
                    .points
                    .iter()
                    .map(|p| {
                        format!(
                            concat!(
                                "        {{\"fault_rate\": {}, \"goodput_tps\": {:.1}, ",
                                "\"retention\": {:.3}, \"p50_us\": {}, \"p99_us\": {}, ",
                                "\"submitted\": {}, \"committed\": {}, \"aborted\": {}, ",
                                "\"gave_up\": {}, \"shed\": {}, \"timed_out\": {}, ",
                                "\"failed\": {}, \"faults_injected\": {}, ",
                                "\"flush_retries\": {}, \"durability_lost\": {}, ",
                                "\"panics_recovered\": {}, \"watchdog_nudges\": {}, ",
                                "\"txn_retries\": {}, \"consistent\": {}}}"
                            ),
                            p.fault_rate,
                            p.goodput_tps,
                            series.retention(p),
                            p.p50_us,
                            p.p99_us,
                            p.submitted,
                            p.committed,
                            p.aborted,
                            p.gave_up,
                            p.shed,
                            p.timed_out,
                            p.failed,
                            p.faults_injected,
                            p.flush_retries,
                            p.durability_lost,
                            p.panics_recovered,
                            p.watchdog_nudges,
                            p.txn_retries,
                            p.consistent,
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(",\n");
                format!(
                    concat!(
                        "    {{\"label\": \"{}\", \"system\": \"{}\", ",
                        "\"healing\": {}, \"clean_tps\": {:.1}, ",
                        "\"points\": [\n{}\n    ]}}"
                    ),
                    series.label(),
                    series.system,
                    series.healing,
                    series.clean_tps(),
                    points,
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            concat!(
                "{{\n  \"experiment\": \"chaos\",\n  \"interval_ms\": {},\n",
                "  \"clients\": {},\n  \"branches\": {},\n",
                "  \"log_streams\": {},\n  \"seed\": {},\n",
                "  \"deterministic\": {},\n  \"fault_points\": [{}],\n",
                "  \"series\": [\n{}\n  ]\n}}\n"
            ),
            self.interval_ms,
            self.clients,
            self.branches,
            self.log_streams,
            self.seed,
            self.deterministic,
            fault_points,
            series
        )
    }
}

/// Sums one balance column of a TPC-B table.
fn chaos_balance_total(db: &Database, table: &str, column: usize) -> f64 {
    let id = db.table_id(table).expect("tpcb table");
    let txn = db.begin();
    let mut total = 0.0;
    db.scan_table(&txn, id, CcMode::Full, |_, row| {
        total += row[column].as_float().unwrap_or(0.0);
    })
    .expect("scan tpcb table");
    db.commit(&txn).expect("read-only commit");
    total
}

/// TPC-B money conservation: every transaction applies the same delta to
/// one branch, one teller and one account, so the three totals agree iff
/// no transaction was torn.
fn chaos_balances_agree(db: &Database) -> bool {
    let branches = chaos_balance_total(db, "branch", 1);
    let tellers = chaos_balance_total(db, "teller", 2);
    let accounts = chaos_balance_total(db, "account", 2);
    (branches - tellers).abs() < 1e-6 && (tellers - accounts).abs() < 1e-6
}

/// Post-run consistency of one chaos cell: the live database conserves
/// money (panic-quarantined and aborted transactions rolled back fully),
/// and replaying whatever survived in the log into a fresh replica does
/// too — even when chaos permanently failed a stream mid-run, recovery
/// must reconstruct a consistent (possibly shorter) history.
fn chaos_consistency_check(db: &Database, scale: &Scale) -> bool {
    if !chaos_balances_agree(db) {
        return false;
    }
    let replica = Database::new(chaos_system_config(scale, 0.0, true));
    let tpcb = scale.tpcb();
    if tpcb.create_schema(&replica).is_err() || tpcb.load(&replica).is_err() {
        return false;
    }
    if db.recover_into(&replica).is_err() {
        return false;
    }
    chaos_balances_agree(&replica)
}

/// Runs one chaos cell: `clients` closed-loop threads submitting TPC-B
/// through the serving front-end while the cell's fault plan injects
/// device errors, latency spikes, flusher stalls and executor panics.
fn run_chaos_point(
    scale: &Scale,
    system: SystemUnderTest,
    healing: bool,
    rate: f64,
    stats: &WorkloadStats,
) -> ChaosPoint {
    use std::sync::atomic::{AtomicBool, Ordering};

    let db = Database::new(chaos_system_config(scale, rate, healing));
    let tpcb = scale.tpcb();
    tpcb.setup(&db).expect("setup TPC-B");
    let workload = Arc::new(tpcb);

    let mut config = ServerConfig {
        engine: system,
        executors_per_table: scale.executors_per_table,
        dora: DoraConfig::default(),
        admission: Some(AdmissionConfig::for_slots(scale.hardware_contexts)),
        session_window: 1,
        submit_deadline: None,
        retry: RetryPolicy::default(),
        snapshot_reads: true,
    };
    if healing {
        // The serving half of self-healing: bounded retries of aborted
        // submissions (with jittered backoff) under a per-submit deadline.
        config.submit_deadline = Some(Duration::from_millis(50));
        config.retry = RetryPolicy::retries(3);
    }
    let server = Server::open(
        Arc::clone(&db),
        Arc::clone(&workload) as Arc<dyn Workload>,
        config,
    )
    .expect("open server");
    let spec = Arc::clone(&workload);
    let statement = server.prepare_template(TpcB::ACCOUNT_UPDATE, move |db, params| {
        match params.as_slice() {
            [Value::Int(branch), Value::Int(account), Value::Int(teller), Value::Float(amount)] => {
                spec.account_update_program(db, *branch, *account, *teller, *amount)
            }
            _ => Err(DbError::InvalidOperation(
                "tpcb binding: [branch, account, teller, amount]".to_string(),
            )),
        }
    });
    let server = Arc::new(server);

    let clients = scale.clients_for(100.0);
    let recording = Arc::new(AtomicBool::new(false));
    let stop = Arc::new(AtomicBool::new(false));
    // Counter deltas cover the whole run (warm-up included): they diagnose
    // the fault paths, while the tallies below measure the recorded window.
    let before = global().snapshot();

    let handles: Vec<_> = (0..clients)
        .map(|client| {
            let server = Arc::clone(&server);
            let statement = statement.clone();
            let workload = Arc::clone(&workload);
            let recording = Arc::clone(&recording);
            let stop = Arc::clone(&stop);
            let stats = stats.clone();
            std::thread::spawn(move || {
                let session = server.session_with_window(1);
                let mut rng = SmallRng::seed_from_u64(0xC4A05 + client as u64 * 6151);
                // submitted, committed, aborted, gave-up, shed, timed-out,
                // failed — exactly the SubmitOutcome buckets.
                let mut tally = [0u64; 7];
                let mut latency = LatencyHistogram::new();
                while !stop.load(Ordering::Relaxed) {
                    let (home_branch, _, account, teller, amount) = workload.inputs(&mut rng);
                    let params = vec![
                        Value::Int(home_branch),
                        Value::Int(account),
                        Value::Int(teller),
                        Value::Float(amount),
                    ];
                    let start = Instant::now();
                    let outcome = session.execute_with(&statement, &params);
                    if recording.load(Ordering::Relaxed) {
                        tally[0] += 1;
                        let txn_outcome = match outcome {
                            SubmitOutcome::Committed => {
                                tally[1] += 1;
                                Some(TxnOutcome::Committed)
                            }
                            SubmitOutcome::Aborted => {
                                tally[2] += 1;
                                Some(TxnOutcome::Aborted)
                            }
                            SubmitOutcome::GaveUp => {
                                tally[3] += 1;
                                Some(TxnOutcome::GaveUp)
                            }
                            SubmitOutcome::Shed => {
                                tally[4] += 1;
                                None
                            }
                            SubmitOutcome::TimedOut => {
                                tally[5] += 1;
                                None
                            }
                            // Executed but not durable; for the per-type
                            // stats it counts as an abort (the response
                            // time is real), the tally keeps it distinct.
                            SubmitOutcome::Failed => {
                                tally[6] += 1;
                                Some(TxnOutcome::Aborted)
                            }
                        };
                        if let Some(txn_outcome) = txn_outcome {
                            let elapsed = start.elapsed();
                            latency.record(elapsed);
                            stats.record_timed(TpcB::ACCOUNT_UPDATE, txn_outcome, elapsed);
                        }
                    }
                    if outcome == SubmitOutcome::Shed {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                }
                (tally, latency)
            })
        })
        .collect();

    std::thread::sleep(scale.warmup);
    recording.store(true, Ordering::Relaxed);
    let started = Instant::now();
    std::thread::sleep(scale.duration);
    recording.store(false, Ordering::Relaxed);
    let elapsed = started.elapsed();
    stop.store(true, Ordering::Relaxed);

    let mut totals = [0u64; 7];
    let mut latency = LatencyHistogram::new();
    for handle in handles {
        let (tally, client_latency) = handle.join().expect("chaos client");
        for (total, count) in totals.iter_mut().zip(tally) {
            *total += count;
        }
        latency.merge(&client_latency);
    }
    server.close();
    let delta = global().snapshot().since(&before);
    let consistent = chaos_consistency_check(&db, scale);

    ChaosPoint {
        fault_rate: rate,
        clients,
        submitted: totals[0],
        committed: totals[1],
        aborted: totals[2],
        gave_up: totals[3],
        shed: totals[4],
        timed_out: totals[5],
        failed: totals[6],
        goodput_tps: totals[1] as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_us: latency.percentile(0.50).as_micros() as u64,
        p99_us: latency.percentile(0.99).as_micros() as u64,
        faults_injected: delta.counter(CounterKind::FaultsInjected),
        flush_retries: delta.counter(CounterKind::FlushRetries),
        durability_lost: delta.counter(CounterKind::DurabilityLost),
        panics_recovered: delta.counter(CounterKind::ExecutorPanicsRecovered),
        watchdog_nudges: delta.counter(CounterKind::WatchdogNudges),
        txn_retries: delta.counter(CounterKind::TxnRetried),
        consistent,
    }
}

/// The chaos experiment: TPC-B through the serving front-end while a
/// seeded fault plan injects log-device errors, latency spikes, flusher
/// stalls and executor panics, for {Baseline, DORA} × self-healing
/// {off, on}. With healing off, the first failed device write kills its
/// log stream and aborted work is never re-offered; with healing on, the
/// flushers retry with capped backoff, supervision quarantines panicked
/// transactions, and sessions retry aborts under a submit deadline —
/// goodput should hold near the fault-free level at moderate fault rates
/// where the unhealed system visibly degrades.
pub fn chaos(scale: &Scale) -> Report {
    chaos_with_summary(scale).0
}

/// [`chaos`], also returning the machine-readable summary.
pub fn chaos_with_summary(scale: &Scale) -> (Report, ChaosSummary) {
    // The seeded-determinism guarantee, checked live: two plans built from
    // the same config must preview the identical decision sequence at every
    // site. (Which *operation* consumes decision k depends on thread
    // interleaving; what decision k *is* does not.)
    let probe = chaos_fault_config(0.05, true);
    let (a, b) = (FaultPlan::new(probe.clone()), FaultPlan::new(probe));
    let deterministic = FaultSite::ALL
        .iter()
        .all(|&site| a.schedule(site, 4096) == b.schedule(site, 4096));

    let mut fault_points = vec![0.0];
    fault_points.extend(scale.chaos_fault_points());
    let stats = WorkloadStats::new();
    let mut series = Vec::new();
    for system in SystemUnderTest::ALL {
        for healing in [false, true] {
            let points = fault_points
                .iter()
                .map(|&rate| run_chaos_point(scale, system, healing, rate, &stats))
                .collect();
            series.push(ChaosSeries {
                system: system.label(),
                healing,
                points,
            });
        }
    }
    let summary = ChaosSummary {
        interval_ms: scale.duration.as_millis() as u64,
        clients: scale.clients_for(100.0),
        branches: scale.tpcb_branches,
        log_streams: scale.log_stream_points.last().copied().unwrap_or(1),
        seed: CHAOS_SEED,
        fault_points,
        deterministic,
        series,
    };

    let mut report = Report::new(
        "Chaos: goodput under injected faults, self-healing on/off (TPC-B via dora-server)",
    );
    report.line(format!(
        "  {} clients, {} log streams, fault seed {:#x}, {} ms per cell",
        summary.clients, summary.log_streams, summary.seed, summary.interval_ms
    ));
    report.kv(
        "deterministic schedule",
        if summary.deterministic { "yes" } else { "NO" },
    );
    report.blank();
    for series in &summary.series {
        report.line(format!("{}:", series.label()));
        report.line(format!(
            "  {:>8} {:>10} {:>10} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>6}",
            "rate",
            "tps",
            "retain",
            "p99(us)",
            "failed",
            "t-out",
            "retried",
            "faults",
            "panics",
            "ok"
        ));
        for point in &series.points {
            report.line(format!(
                "  {:>8.3} {:>10.0} {:>10} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>6}",
                point.fault_rate,
                point.goodput_tps,
                pct(series.retention(point)),
                point.p99_us,
                point.failed,
                point.timed_out,
                point.txn_retries,
                point.faults_injected,
                point.panics_recovered,
                if point.consistent { "yes" } else { "NO" },
            ));
        }
        report.blank();
    }
    report.line("  per-transaction-type summary (all series, executed submissions):");
    txn_stats_table(&mut report, &stats);
    report.blank();
    report.line("  (retain = goodput vs the series' own fault-free cell; failed =");
    report.line("   ghost commits on a dead log stream; ok = live state and log");
    report.line("   replay both conserve money after the run)");
    (report, summary)
}

/// One measured cell of the `htap` experiment: closed-loop TPC-B OLTP at
/// 100% offered load with `scan_threads` analytical scan threads running
/// concurrently, each repeatedly pinning a snapshot and sweeping the whole
/// account table through the lock-free MVCC read path.
#[derive(Debug, Clone)]
pub struct HtapPoint {
    /// Concurrent analytical scan threads (0 = the scan-free OLTP baseline
    /// the interference is measured against).
    pub scan_threads: usize,
    /// Closed-loop OLTP client threads.
    pub oltp_clients: usize,
    /// OLTP transactions committed during the measured interval.
    pub oltp_committed: u64,
    /// OLTP commits per second.
    pub oltp_tps: f64,
    /// Full-table scans completed during the measured interval (all scan
    /// threads).
    pub scans_completed: u64,
    /// Completed scans per second.
    pub scans_per_sec: f64,
    /// Rows the last completed scan visited (sanity: the whole table).
    pub rows_per_scan: u64,
    /// Mean snapshot staleness at scan completion, in commit tickets: how
    /// many transactions committed while the scan was running.
    pub avg_staleness: f64,
    /// Worst-case staleness observed (commit tickets).
    pub max_staleness: u64,
    /// Centralized + DORA-local lock acquisitions on the scan threads over
    /// the whole run. The snapshot path's claim is that this is **zero**.
    pub scan_lock_acquisitions: u64,
    /// Row versions installed during the measured window (all threads).
    pub versions_created: u64,
    /// Row versions reclaimed by the background collector in the window.
    pub versions_reclaimed: u64,
    /// Live version-chain count at the end of the cell.
    pub live_chains: usize,
    /// Mean live version-chain length at the end of the cell.
    pub chain_mean: f64,
    /// Longest live version chain at the end of the cell.
    pub chain_max: u64,
}

/// One engine's `htap` sweep over the scan-thread counts for one scan
/// family (TPC-B branch balances or TPC-C stock level).
#[derive(Debug, Clone)]
pub struct HtapSeries {
    /// Engine label ("Baseline" / "DORA").
    pub system: &'static str,
    /// Scan family label ("tpcb-branch-balances" / "tpcc-stock-level").
    pub scan: &'static str,
    /// One entry per scan-thread count, in sweep order; `points[0]` is the
    /// scan-free baseline.
    pub points: Vec<HtapPoint>,
}

impl HtapSeries {
    /// OLTP throughput of the scan-free cell.
    pub fn baseline_tps(&self) -> f64 {
        self.points.first().map(|p| p.oltp_tps).unwrap_or(0.0)
    }

    /// `point`'s OLTP throughput as a fraction of the scan-free cell —
    /// the interference figure of merit: snapshot scans should hold this
    /// near 1.0 no matter how many scan threads run.
    pub fn retention(&self, point: &HtapPoint) -> f64 {
        point.oltp_tps / self.baseline_tps().max(1.0)
    }
}

/// Everything the `htap` experiment measured; serialized to
/// `BENCH_htap.json` by the CI bench-smoke job.
#[derive(Debug, Clone)]
pub struct HtapSummary {
    /// Measured interval length per cell, in milliseconds.
    pub interval_ms: u64,
    /// Per-thread scan pacing interval, in milliseconds (one sweep starts
    /// per interval; back-to-back when a sweep runs longer).
    pub scan_interval_ms: u64,
    /// TPC-B branches.
    pub branches: i64,
    /// TPC-B accounts per branch (the scanned table has
    /// `branches × accounts_per_branch` rows).
    pub accounts_per_branch: i64,
    /// Closed-loop OLTP clients per cell.
    pub oltp_clients: usize,
    /// The scan-thread counts swept.
    pub scan_points: Vec<usize>,
    /// The two series: one per engine.
    pub series: Vec<HtapSeries>,
}

impl HtapSummary {
    /// Renders the summary as a small JSON document (hand-rolled like the
    /// other summaries; no serde in the workspace).
    pub fn to_json(&self) -> String {
        let series = self
            .series
            .iter()
            .map(|series| {
                let points = series
                    .points
                    .iter()
                    .map(|p| {
                        format!(
                            concat!(
                                "        {{\"scan_threads\": {}, \"oltp_clients\": {}, ",
                                "\"oltp_tps\": {:.1}, \"oltp_retention\": {:.3}, ",
                                "\"scans_per_sec\": {:.2}, \"scans_completed\": {}, ",
                                "\"rows_per_scan\": {}, \"avg_staleness\": {:.1}, ",
                                "\"max_staleness\": {}, \"scan_lock_acquisitions\": {}, ",
                                "\"versions_created\": {}, \"versions_reclaimed\": {}, ",
                                "\"live_chains\": {}, \"chain_mean\": {:.2}, ",
                                "\"chain_max\": {}}}"
                            ),
                            p.scan_threads,
                            p.oltp_clients,
                            p.oltp_tps,
                            series.retention(p),
                            p.scans_per_sec,
                            p.scans_completed,
                            p.rows_per_scan,
                            p.avg_staleness,
                            p.max_staleness,
                            p.scan_lock_acquisitions,
                            p.versions_created,
                            p.versions_reclaimed,
                            p.live_chains,
                            p.chain_mean,
                            p.chain_max,
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(",\n");
                format!(
                    concat!(
                        "    {{\"system\": \"{}\", \"scan\": \"{}\", ",
                        "\"baseline_tps\": {:.1}, ",
                        "\"points\": [\n{}\n    ]}}"
                    ),
                    series.system,
                    series.scan,
                    series.baseline_tps(),
                    points,
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            concat!(
                "{{\n  \"experiment\": \"htap\",\n  \"interval_ms\": {},\n",
                "  \"scan_interval_ms\": {},\n",
                "  \"branches\": {},\n  \"accounts_per_branch\": {},\n",
                "  \"oltp_clients\": {},\n  \"series\": [\n{}\n  ]\n}}\n"
            ),
            self.interval_ms,
            self.scan_interval_ms,
            self.branches,
            self.accounts_per_branch,
            self.oltp_clients,
            series
        )
    }
}

/// Which analytical sweep an `htap` cell runs concurrently with OLTP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HtapScanFamily {
    /// TPC-B OLTP mix + full sweep of the account table (branch balances).
    TpcbBranchBalances,
    /// TPC-C OLTP mix + stock-level sweep of the stock table (TPC-C's own
    /// analytical query, run as a live scan instead of a transaction).
    TpccStockLevel,
}

/// Stock-level threshold for the TPC-C htap cells: mid-range of the spec's
/// 10..20 so roughly half the low-stock candidates count.
const HTAP_STOCK_THRESHOLD: i64 = 15;

impl HtapScanFamily {
    fn label(self) -> &'static str {
        match self {
            HtapScanFamily::TpcbBranchBalances => "tpcb-branch-balances",
            HtapScanFamily::TpccStockLevel => "tpcc-stock-level",
        }
    }
}

/// Runs one `htap` cell: OLTP clients and scan threads share one recording
/// window; the scan threads verify their own lock-freedom through their
/// thread-local counter slots.
fn run_htap_point(
    scale: &Scale,
    system: SystemUnderTest,
    family: HtapScanFamily,
    scan_threads: usize,
) -> HtapPoint {
    use std::sync::atomic::{AtomicBool, Ordering};

    use dora_metrics::current_thread_snapshot;
    use dora_workloads::AnalyticalScan;

    let prepared = match family {
        HtapScanFamily::TpcbBranchBalances => prepare(scale.tpcb(), scale, system),
        HtapScanFamily::TpccStockLevel => prepare(scale.tpcc(), scale, system),
    };
    let oltp_clients = scale.clients_for(100.0);

    let recording = Arc::new(AtomicBool::new(false));
    let stop = Arc::new(AtomicBool::new(false));
    let before = global().snapshot();

    // Analytical side: each scan thread owns its prepared program and result
    // sink, and pins a fresh snapshot per sweep. Sweeps are paced — one per
    // `scale.htap_scan_interval` (back-to-back when a sweep runs longer) —
    // so the analytical load scales with the thread count without the scan
    // threads flat-out monopolizing cores; the interference measured against
    // the scan-free cell is then the lock/latch kind, not CPU starvation.
    // Lock-freedom is checked per thread: the thread-local counter delta
    // across the whole loop must contain zero lock acquisitions of any
    // flavor.
    let interval = scale.htap_scan_interval;
    let scanners: Vec<_> = (0..scan_threads)
        .map(|_| {
            let engine = Arc::clone(&prepared.engine);
            let db = Arc::clone(&prepared.db);
            let recording = Arc::clone(&recording);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let sink = AnalyticalScan::sink();
                let program = match family {
                    HtapScanFamily::TpcbBranchBalances => {
                        AnalyticalScan::tpcb_branch_balances(&db, Arc::clone(&sink))
                    }
                    HtapScanFamily::TpccStockLevel => AnalyticalScan::tpcc_stock_level_sweep(
                        &db,
                        HTAP_STOCK_THRESHOLD,
                        Arc::clone(&sink),
                    ),
                }
                .expect("build scan program");
                let scan = engine.prepare(program).expect("prepare scan program");
                let thread_before = current_thread_snapshot();
                let (mut scans, mut rows) = (0u64, 0u64);
                let (mut staleness_sum, mut staleness_max) = (0u64, 0u64);
                while !stop.load(Ordering::Relaxed) {
                    let tick = Instant::now();
                    let snapshot = Arc::new(engine.snapshot());
                    engine
                        .execute_on_snapshot(&scan, &snapshot)
                        .expect("snapshot scan");
                    if recording.load(Ordering::Relaxed) {
                        scans += 1;
                        let staleness = snapshot.staleness();
                        staleness_sum += staleness;
                        staleness_max = staleness_max.max(staleness);
                        rows = sink.lock().rows_scanned;
                    }
                    if let Some(rest) = interval.checked_sub(tick.elapsed()) {
                        std::thread::sleep(rest);
                    }
                }
                let delta = current_thread_snapshot().since(&thread_before);
                let locks = delta.counter(CounterKind::RowLevelLock)
                    + delta.counter(CounterKind::HigherLevelLock)
                    + delta.counter(CounterKind::DoraLocalLock);
                (scans, staleness_sum, staleness_max, rows, locks)
            })
        })
        .collect();

    // OLTP side: closed-loop clients at 100% offered load, exactly like the
    // load-sweep figures.
    let oltp: Vec<_> = (0..oltp_clients)
        .map(|client| {
            let engine = Arc::clone(&prepared.engine);
            let recording = Arc::clone(&recording);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0x47a9 + client as u64 * 6007);
                let mut committed = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let outcome = engine.execute_one(&mut rng);
                    if recording.load(Ordering::Relaxed) && outcome == TxnOutcome::Committed {
                        committed += 1;
                    }
                }
                committed
            })
        })
        .collect();

    std::thread::sleep(scale.warmup);
    recording.store(true, Ordering::Relaxed);
    let started = Instant::now();
    std::thread::sleep(scale.duration);
    recording.store(false, Ordering::Relaxed);
    let elapsed = started.elapsed();
    stop.store(true, Ordering::Relaxed);

    let oltp_committed: u64 = oltp
        .into_iter()
        .map(|h| h.join().expect("oltp client"))
        .sum();
    let (mut scans, mut staleness_sum, mut staleness_max) = (0u64, 0u64, 0u64);
    let (mut rows_per_scan, mut scan_locks) = (0u64, 0u64);
    for handle in scanners {
        let (s, sum, max, rows, locks) = handle.join().expect("scan thread");
        scans += s;
        staleness_sum += sum;
        staleness_max = staleness_max.max(max);
        rows_per_scan = rows_per_scan.max(rows);
        scan_locks += locks;
    }

    let delta = global().snapshot().since(&before);
    let mvcc = prepared.db.mvcc_stats();
    prepared.shutdown();

    let secs = elapsed.as_secs_f64().max(1e-9);
    HtapPoint {
        scan_threads,
        oltp_clients,
        oltp_committed,
        oltp_tps: oltp_committed as f64 / secs,
        scans_completed: scans,
        scans_per_sec: scans as f64 / secs,
        rows_per_scan,
        avg_staleness: staleness_sum as f64 / scans.max(1) as f64,
        max_staleness: staleness_max,
        scan_lock_acquisitions: scan_locks,
        versions_created: delta.counter(CounterKind::VersionsCreated),
        versions_reclaimed: delta.counter(CounterKind::VersionsReclaimed),
        live_chains: mvcc.chains,
        chain_mean: mvcc.chain_lengths.mean(),
        chain_max: mvcc.chain_lengths.max(),
    }
}

/// The HTAP experiment: OLTP at full load with live analytical scans
/// sharing the same database through MVCC snapshots, in two scan families —
/// TPC-B branch balances over the account table and TPC-C's stock-level
/// sweep over the stock table. For each engine and family the scan-thread
/// count is swept from 0 (the interference baseline) upward; the claims
/// under test are (1) scan throughput scales with scan threads, (2) OLTP
/// throughput stays near the scan-free baseline, and (3) the scan threads
/// acquire **zero** locks — centralized or DORA-local — which their own
/// thread-local counters prove.
pub fn htap(scale: &Scale) -> Report {
    htap_with_summary(scale).0
}

/// The scan-thread counts the `htap` experiment sweeps.
const HTAP_SCAN_POINTS: [usize; 4] = [0, 1, 2, 4];

/// The scan families the `htap` experiment sweeps.
const HTAP_SCAN_FAMILIES: [HtapScanFamily; 2] = [
    HtapScanFamily::TpcbBranchBalances,
    HtapScanFamily::TpccStockLevel,
];

/// [`htap`], also returning the machine-readable summary.
pub fn htap_with_summary(scale: &Scale) -> (Report, HtapSummary) {
    let scan_points: Vec<usize> = HTAP_SCAN_POINTS.to_vec();
    let mut series = Vec::new();
    for family in HTAP_SCAN_FAMILIES {
        for system in SystemUnderTest::ALL {
            let points = scan_points
                .iter()
                .map(|&threads| run_htap_point(scale, system, family, threads))
                .collect();
            series.push(HtapSeries {
                system: system.label(),
                scan: family.label(),
                points,
            });
        }
    }
    let summary = HtapSummary {
        interval_ms: scale.duration.as_millis() as u64,
        scan_interval_ms: scale.htap_scan_interval.as_millis() as u64,
        branches: scale.tpcb_branches,
        accounts_per_branch: scale.tpcb_accounts_per_branch,
        oltp_clients: scale.clients_for(100.0),
        scan_points,
        series,
    };

    let mut report = Report::new(
        "HTAP: OLTP interference vs live snapshot scans (TPC-B balances + TPC-C stock level)",
    );
    report.line(format!(
        concat!(
            "  {} OLTP clients at 100% load, {} ms per cell, one sweep per ",
            "{} ms per scan thread; tpcb cells sweep {} x {} accounts, tpcc ",
            "cells sweep the stock table (threshold {})"
        ),
        summary.oltp_clients,
        summary.interval_ms,
        summary.scan_interval_ms,
        summary.branches,
        summary.accounts_per_branch,
        HTAP_STOCK_THRESHOLD
    ));
    report.blank();
    for series in &summary.series {
        report.line(format!("{} / {}:", series.system, series.scan));
        report.line(format!(
            "  {:>6} {:>10} {:>8} {:>9} {:>10} {:>10} {:>10} {:>9} {:>9}",
            "scans",
            "oltp-tps",
            "retain",
            "scans/s",
            "stale-avg",
            "stale-max",
            "scan-lks",
            "v-made",
            "v-freed",
        ));
        for point in &series.points {
            report.line(format!(
                "  {:>6} {:>10.0} {:>8} {:>9.1} {:>10.1} {:>10} {:>10} {:>9} {:>9}",
                point.scan_threads,
                point.oltp_tps,
                pct(series.retention(point)),
                point.scans_per_sec,
                point.avg_staleness,
                point.max_staleness,
                point.scan_lock_acquisitions,
                point.versions_created,
                point.versions_reclaimed,
            ));
        }
        report.blank();
    }
    report.line("  (retain = OLTP tps vs the engine's own scan-free cell; stale-* =");
    report.line("   commit tickets that landed while a scan ran; scan-lks = lock");
    report.line("   acquisitions on the scan threads, proving the snapshot path");
    report.line("   never touches the lock manager or the local lock tables)");
    (report, summary)
}

/// One measured cell of the `conflicts` experiment: one workload's full mix
/// driven at 100% offered load on DORA, with conflict-driven probe elision
/// either off (every routed action probes its local lock table) or on
/// (bind-time-proved no-conflict steps skip the probe entirely).
#[derive(Debug, Clone)]
pub struct ConflictCell {
    /// Whether `DoraConfig::conflict_elision` was on for this run.
    pub elision: bool,
    /// Commits per second over the measured interval.
    pub tps: f64,
    /// Transactions committed during the measured interval.
    pub committed: u64,
    /// Local-lock-table acquisitions during the measured interval.
    pub local_lock_acquisitions: u64,
    /// Probes skipped because the conflict matrix proved the step safe.
    pub probes_elided: u64,
    /// Actions that fell back to the submitting thread because no routing
    /// identifier covered them (counted per dispatch).
    pub secondary_fallbacks: u64,
    /// Local-lock acquisitions per committed transaction.
    pub locks_per_txn: f64,
    /// Elided probes per committed transaction.
    pub elided_per_txn: f64,
}

/// Everything the `conflicts` experiment learned about one workload: the
/// static bind-time matrix facts plus the off/on measured cells.
#[derive(Debug, Clone)]
pub struct ConflictWorkloadResult {
    /// Workload label ("TM1" / "TPC-C").
    pub workload: &'static str,
    /// Step templates declared by the workload.
    pub templates: usize,
    /// Routed (non-secondary) templates the solver analyzed.
    pub routed: usize,
    /// Templates proved conflict-free (probe-elidable).
    pub probe_free: usize,
    /// Conflicting template pairs (including self-pairs).
    pub conflicting_pairs: usize,
    /// Programs the matrix auto-derives as DORA-S serialized plans.
    pub auto_serialized: usize,
    /// Steps the routing fields cannot cover (bind-time coverage report).
    pub coverage_gaps: usize,
    /// The engine's bind-time conflict report (elision-on bind).
    pub report: String,
    /// The measured cells, elision off then on.
    pub cells: Vec<ConflictCell>,
}

impl ConflictWorkloadResult {
    /// The measured cell for the given elision setting.
    pub fn cell(&self, elision: bool) -> Option<&ConflictCell> {
        self.cells.iter().find(|c| c.elision == elision)
    }

    /// Fractional drop in per-transaction local-lock acquisitions with
    /// elision on vs. off (0.5 = half the probes gone). `None` until both
    /// cells exist.
    pub fn probe_drop(&self) -> Option<f64> {
        let off = self.cell(false)?;
        let on = self.cell(true)?;
        if off.locks_per_txn <= 0.0 {
            return None;
        }
        Some(1.0 - on.locks_per_txn / off.locks_per_txn)
    }
}

/// Everything the `conflicts` experiment measured; serialized to
/// `BENCH_conflicts.json` by the CI bench-smoke job.
#[derive(Debug, Clone)]
pub struct ConflictsSummary {
    /// Measured interval length per cell, in milliseconds.
    pub interval_ms: u64,
    /// Closed-loop clients per cell.
    pub clients: usize,
    /// One entry per workload.
    pub workloads: Vec<ConflictWorkloadResult>,
}

impl ConflictsSummary {
    /// Renders the summary as a small JSON document (hand-rolled like the
    /// other summaries; no serde in the workspace). The bind-time report
    /// text stays out of the JSON — it is in the plain-text report.
    pub fn to_json(&self) -> String {
        let workloads = self
            .workloads
            .iter()
            .map(|w| {
                let cells = w
                    .cells
                    .iter()
                    .map(|c| {
                        format!(
                            concat!(
                                "        {{\"elision\": {}, \"tps\": {:.1}, ",
                                "\"committed\": {}, ",
                                "\"local_lock_acquisitions\": {}, ",
                                "\"probes_elided\": {}, ",
                                "\"secondary_fallbacks\": {}, ",
                                "\"locks_per_txn\": {:.3}, ",
                                "\"elided_per_txn\": {:.3}}}"
                            ),
                            c.elision,
                            c.tps,
                            c.committed,
                            c.local_lock_acquisitions,
                            c.probes_elided,
                            c.secondary_fallbacks,
                            c.locks_per_txn,
                            c.elided_per_txn,
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(",\n");
                format!(
                    concat!(
                        "    {{\"workload\": \"{}\", \"templates\": {}, ",
                        "\"routed\": {}, \"probe_free\": {}, ",
                        "\"conflicting_pairs\": {}, \"auto_serialized\": {}, ",
                        "\"coverage_gaps\": {}, \"probe_drop\": {:.3}, ",
                        "\"cells\": [\n{}\n    ]}}"
                    ),
                    w.workload,
                    w.templates,
                    w.routed,
                    w.probe_free,
                    w.conflicting_pairs,
                    w.auto_serialized,
                    w.coverage_gaps,
                    w.probe_drop().unwrap_or(0.0),
                    cells,
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            concat!(
                "{{\n  \"experiment\": \"conflicts\",\n",
                "  \"interval_ms\": {},\n  \"clients\": {},\n",
                "  \"workloads\": [\n{}\n  ]\n}}\n"
            ),
            self.interval_ms, self.clients, workloads
        )
    }
}

/// Runs one `conflicts` cell and, when elision is on, captures the engine's
/// bind-time conflict report.
fn run_conflicts_cell(
    scale: &Scale,
    workload: &'static str,
    elision: bool,
) -> (ConflictCell, Option<String>) {
    let config = DoraConfig {
        conflict_elision: elision,
        ..DoraConfig::default()
    };
    let prepared = match workload {
        "TM1" => prepare_with_config(scale.tm1(), scale, SystemUnderTest::Dora, config),
        _ => prepare_with_config(scale.tpcc(), scale, SystemUnderTest::Dora, config),
    };
    let bind_report = prepared.engine.conflict_report();
    let result = run_clients(&prepared, scale, scale.clients_for(100.0));
    prepared.shutdown();
    let committed = result.committed.max(1) as f64;
    let local_locks = result.metrics.counter(CounterKind::DoraLocalLock);
    let elided = result.metrics.counter(CounterKind::LockProbesElided);
    let cell = ConflictCell {
        elision,
        tps: result.throughput_tps,
        committed: result.committed,
        local_lock_acquisitions: local_locks,
        probes_elided: elided,
        secondary_fallbacks: result.metrics.counter(CounterKind::SecondaryFallbacks),
        locks_per_txn: local_locks as f64 / committed,
        elided_per_txn: elided as f64 / committed,
    };
    (cell, bind_report)
}

/// The `conflicts` experiment: for TM1 and TPC-C (full mixes), run DORA at
/// 100% offered load with conflict-driven probe elision off and on, and
/// report the local-lock-probe drop the static analysis buys. The headline
/// claim: the solver dismisses most TM1 probes (read-dominated mix) at
/// equal-or-better throughput, because an elided probe is latch work and
/// Completed-message fan-out that never happens.
pub fn conflicts(scale: &Scale) -> Report {
    conflicts_with_summary(scale).0
}

/// [`conflicts`], also returning the machine-readable summary.
pub fn conflicts_with_summary(scale: &Scale) -> (Report, ConflictsSummary) {
    use dora_core::ConflictMatrix;

    let clients = scale.clients_for(100.0);
    let mut workloads = Vec::new();
    for workload in ["TM1", "TPC-C"] {
        let mut cells = Vec::new();
        let mut bind_report = String::new();
        for elision in [false, true] {
            let (cell, report) = run_conflicts_cell(scale, workload, elision);
            cells.push(cell);
            if let Some(text) = report {
                bind_report = text;
            }
        }
        // Static matrix facts, recomputed from the declared templates so the
        // summary does not depend on which engine instance survived.
        let db = Database::new(scale.system_config());
        let spec = match workload {
            "TM1" => {
                let w = scale.tm1();
                w.setup(&db).expect("set up workload");
                w.conflict_templates(&db).expect("templates")
            }
            _ => {
                let w = scale.tpcc();
                w.setup(&db).expect("set up workload");
                w.conflict_templates(&db).expect("templates")
            }
        };
        let matrix =
            ConflictMatrix::analyze(&spec, DoraConfig::default().serialize_abort_threshold);
        workloads.push(ConflictWorkloadResult {
            workload,
            templates: spec.iter().map(|p| p.steps().len()).sum(),
            routed: matrix.routed_count(),
            probe_free: matrix.probe_free_count(),
            conflicting_pairs: matrix.conflict_pair_count(),
            auto_serialized: matrix.serialized_count(),
            coverage_gaps: matrix.coverage_gaps().len(),
            report: bind_report,
            cells,
        });
    }
    let summary = ConflictsSummary {
        interval_ms: scale.duration.as_millis() as u64,
        clients,
        workloads,
    };

    let mut report = Report::new("Conflict analysis: probe elision off vs on (DORA, 100% load)");
    report.line(format!(
        "  {} closed-loop clients, {} ms per cell",
        summary.clients, summary.interval_ms
    ));
    report.blank();
    for w in &summary.workloads {
        report.line(format!(
            concat!(
                "{}: {} templates ({} routed), {} probe-free, ",
                "{} conflicting pairs, {} auto-serialized, {} coverage gaps"
            ),
            w.workload,
            w.templates,
            w.routed,
            w.probe_free,
            w.conflicting_pairs,
            w.auto_serialized,
            w.coverage_gaps,
        ));
        report.line(format!(
            "  {:>8} {:>10} {:>10} {:>12} {:>10} {:>11} {:>9}",
            "elision", "tps", "txns", "local-locks", "locks/txn", "elided/txn", "sec-fall",
        ));
        for cell in &w.cells {
            report.line(format!(
                "  {:>8} {:>10.0} {:>10} {:>12} {:>10.2} {:>11.2} {:>9}",
                if cell.elision { "on" } else { "off" },
                cell.tps,
                cell.committed,
                cell.local_lock_acquisitions,
                cell.locks_per_txn,
                cell.elided_per_txn,
                cell.secondary_fallbacks,
            ));
        }
        if let Some(drop) = w.probe_drop() {
            report.line(format!(
                "  probe drop: {} fewer local-lock acquisitions per committed txn",
                pct(drop)
            ));
        }
        if !w.report.is_empty() {
            report.line("  bind-time report:");
            for line in w.report.lines() {
                report.line(format!("    {line}"));
            }
        }
        report.blank();
    }
    report.line("  (local-locks counts LocalLockTable grants during the measured");
    report.line("   interval; elided probes never reach the table and never join");
    report.line("   the Completed-message release fan-out)");
    (report, summary)
}

/// Runs every paper figure at the given scale, returning the reports.
/// The `skew` experiment is not included — run it through
/// [`skew_with_summary`] so its report and machine-readable summary come
/// from the same measurement.
pub fn figures(scale: &Scale) -> Vec<Report> {
    vec![
        fig1(scale),
        fig2(scale),
        fig3(scale),
        fig4(scale),
        fig5(scale),
        fig6(scale),
        fig7(scale),
        fig8(scale),
        fig10(scale),
        fig11(scale),
    ]
}

/// Runs every experiment (paper figures plus `skew`, `dispatch`, `commit`,
/// `recover`, `saturation`, `chaos`, `htap` and `conflicts`) at the given
/// scale.
pub fn all(scale: &Scale) -> Vec<Report> {
    let mut reports = figures(scale);
    reports.push(skew(scale));
    reports.push(dispatch(scale));
    reports.push(commit(scale));
    reports.push(recover(scale));
    reports.push(saturation(scale));
    reports.push(chaos(scale));
    reports.push(htap(scale));
    reports.push(conflicts(scale));
    reports
}

/// Looks an experiment up by name (`fig1`, `fig2`, ...). `fig9` is the
/// step-by-step Payment execution walk-through, which is validated by the
/// integration test `payment_twelve_steps` rather than by a measurement.
pub fn by_name(name: &str, scale: &Scale) -> Option<Report> {
    match name {
        "fig1" => Some(fig1(scale)),
        "fig2" => Some(fig2(scale)),
        "fig3" => Some(fig3(scale)),
        "fig4" => Some(fig4(scale)),
        "fig5" => Some(fig5(scale)),
        "fig6" => Some(fig6(scale)),
        "fig7" => Some(fig7(scale)),
        "fig8" => Some(fig8(scale)),
        "fig10" => Some(fig10(scale)),
        "fig11" => Some(fig11(scale)),
        "skew" => Some(skew(scale)),
        "dispatch" => Some(dispatch(scale)),
        "commit" => Some(commit(scale)),
        "recover" => Some(recover(scale)),
        "saturation" => Some(saturation(scale)),
        "chaos" => Some(chaos(scale)),
        "htap" => Some(htap(scale)),
        "conflicts" => Some(conflicts(scale)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn micro_scale() -> Scale {
        Scale {
            duration: Duration::from_millis(80),
            warmup: Duration::from_millis(10),
            tm1_subscribers: 300,
            tpcc_warehouses: 2,
            tpcc_customers_per_district: 20,
            tpcc_items: 30,
            tpcb_branches: 2,
            tpcb_accounts_per_branch: 30,
            executors_per_table: 2,
            hardware_contexts: 4,
            log_flush_micros: 0,
            skew_keys: 100,
            zipf_theta: 0.99,
            fanout_keys: 64,
            fanout_actions: 4,
            htap_scan_interval: Duration::from_millis(5),
            log_stream_points: vec![1, 2],
            recover_txns: 120,
        }
    }

    #[test]
    fn fig4_describes_payment_graph_shape() {
        let report = fig4(&micro_scale());
        let text = report.render();
        assert!(text.contains("phase 1"), "{text}");
        assert!(text.contains("phase 2"), "{text}");
        assert!(text.contains("payment-history"), "{text}");
    }

    #[test]
    fn fig5_reports_lock_classes_for_both_systems() {
        let report = fig5(&micro_scale());
        let text = report.render();
        assert!(text.contains("Baseline"));
        assert!(text.contains("DORA"));
        assert!(text.contains("TPC-C OrderStatus"));
    }

    #[test]
    fn experiment_lookup_by_name() {
        let scale = micro_scale();
        assert!(by_name("fig4", &scale).is_some());
        assert!(by_name("fig99", &scale).is_none());
    }

    #[test]
    fn saturation_runs_all_series_and_accounts_exactly() {
        let scale = micro_scale();
        let (report, summary) = saturation_with_summary(&scale);
        let text = report.render();
        assert!(text.contains("Baseline"), "{text}");
        assert!(text.contains("DORA+admission"), "{text}");
        assert!(text.contains("transaction type"), "{text}");

        assert_eq!(summary.series.len(), 4, "{{Baseline, DORA}} x {{off, on}}");
        for series in &summary.series {
            assert_eq!(series.points.len(), scale.saturation_points().len());
            for point in &series.points {
                assert_eq!(
                    point.submitted,
                    point.committed + point.aborted + point.gave_up + point.shed,
                    "{}: accounting must be exact",
                    series.label()
                );
                if !series.admission {
                    assert_eq!(point.shed, 0, "{}: nothing sheds ungated", series.label());
                }
            }
            assert!(
                series.peak_tps() > 0.0,
                "{}: the sweep committed nothing",
                series.label()
            );
        }

        let json = summary.to_json();
        assert!(json.contains("\"experiment\": \"saturation\""), "{json}");
        assert!(json.contains("\"admission\": true"), "{json}");
        assert!(json.contains("\"shed_rate\""), "{json}");
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close} in {json}"
            );
        }
    }

    #[test]
    fn htap_scans_are_lock_free_and_json_is_well_formed() {
        let scale = micro_scale();
        let (report, summary) = htap_with_summary(&scale);
        let text = report.render();
        assert!(text.contains("Baseline"), "{text}");
        assert!(text.contains("DORA"), "{text}");

        assert_eq!(
            summary.series.len(),
            4,
            "{{Baseline, DORA}} x {{tpcb, tpcc}}"
        );
        for series in &summary.series {
            let rows = match series.scan {
                "tpcb-branch-balances" => {
                    (scale.tpcb_branches * scale.tpcb_accounts_per_branch) as u64
                }
                "tpcc-stock-level" => (scale.tpcc_warehouses * scale.tpcc_items) as u64,
                other => panic!("unknown scan family {other}"),
            };
            assert_eq!(series.points.len(), summary.scan_points.len());
            assert_eq!(series.points[0].scan_threads, 0);
            assert!(
                series.baseline_tps() > 0.0,
                "{}: scan-free cell committed nothing",
                series.system
            );
            for point in &series.points {
                assert_eq!(
                    point.scan_lock_acquisitions, 0,
                    "{}@{} scans: snapshot scans must never lock",
                    series.system, point.scan_threads
                );
                if point.scan_threads > 0 {
                    assert!(
                        point.scans_completed > 0,
                        "{}@{} scans: no sweep finished",
                        series.system,
                        point.scan_threads
                    );
                    assert_eq!(
                        point.rows_per_scan, rows,
                        "{}: a sweep must visit the whole table",
                        series.system
                    );
                }
            }
        }

        let json = summary.to_json();
        assert!(json.contains("\"experiment\": \"htap\""), "{json}");
        assert!(json.contains("\"oltp_retention\""), "{json}");
        assert!(json.contains("\"scan_lock_acquisitions\": 0"), "{json}");
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close} in {json}"
            );
        }
    }

    #[test]
    fn conflicts_reports_both_workloads_and_json_is_well_formed() {
        let scale = micro_scale();
        let (report, summary) = conflicts_with_summary(&scale);
        let text = report.render();
        assert!(text.contains("TM1"), "{text}");
        assert!(text.contains("TPC-C"), "{text}");
        assert!(text.contains("probe-free"), "{text}");

        assert_eq!(summary.workloads.len(), 2, "{{TM1, TPC-C}}");
        for w in &summary.workloads {
            assert_eq!(w.cells.len(), 2, "{}: off and on", w.workload);
            assert!(w.cell(false).is_some() && w.cell(true).is_some());
            // Static matrix facts are deterministic: both workloads must
            // prove some probes away, and TM1's read-heavy mix proves most
            // of its routed templates safe.
            assert!(w.probe_free > 0, "{}: nothing proved safe", w.workload);
            assert!(
                w.probe_free < w.routed,
                "{}: writers must probe",
                w.workload
            );
            assert!(!w.report.is_empty(), "{}: bind report missing", w.workload);
            // Counters are process-global, so parallel tests can inflate the
            // measured deltas — only the sign is asserted here; the strict
            // off/on comparison lives in tests/conflict_elision.rs.
            let on = w.cell(true).unwrap();
            assert!(on.probes_elided > 0, "{}: elision never fired", w.workload);
        }

        let json = summary.to_json();
        assert!(json.contains("\"experiment\": \"conflicts\""), "{json}");
        assert!(json.contains("\"probe_drop\""), "{json}");
        assert!(json.contains("\"elision\": true"), "{json}");
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close} in {json}"
            );
        }
    }

    #[test]
    fn chaos_runs_all_series_and_accounts_exactly() {
        dora_common::silence_injected_panics();
        let scale = micro_scale();
        let (report, summary) = chaos_with_summary(&scale);
        let text = report.render();
        assert!(text.contains("Baseline"), "{text}");
        assert!(text.contains("DORA+healing"), "{text}");

        assert!(summary.deterministic, "seeded schedules must reproduce");
        assert_eq!(summary.series.len(), 4, "{{Baseline, DORA}} x {{off, on}}");
        for series in &summary.series {
            assert_eq!(series.points.len(), summary.fault_points.len());
            for point in &series.points {
                assert_eq!(
                    point.submitted,
                    point.committed
                        + point.aborted
                        + point.gave_up
                        + point.shed
                        + point.timed_out
                        + point.failed,
                    "{}: accounting must be exact",
                    series.label()
                );
                assert!(
                    point.consistent,
                    "{}@{}: post-run state or recovery inconsistent",
                    series.label(),
                    point.fault_rate
                );
            }
            let clean = &series.points[0];
            assert_eq!(clean.faults_injected, 0, "rate 0 must draw nothing");
            assert_eq!(clean.failed, 0);
            assert!(
                clean.committed > 0,
                "{}: fault-free cell idle",
                series.label()
            );
        }

        let json = summary.to_json();
        assert!(json.contains("\"experiment\": \"chaos\""), "{json}");
        assert!(json.contains("\"healing\": true"), "{json}");
        assert!(json.contains("\"flush_retries\""), "{json}");
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close} in {json}"
            );
        }
    }

    #[test]
    fn chaos_summary_renders_valid_json_shape() {
        let point = ChaosPoint {
            fault_rate: 0.02,
            clients: 4,
            submitted: 100,
            committed: 90,
            aborted: 5,
            gave_up: 1,
            shed: 2,
            timed_out: 1,
            failed: 1,
            goodput_tps: 900.0,
            p50_us: 120,
            p99_us: 900,
            faults_injected: 40,
            flush_retries: 12,
            durability_lost: 1,
            panics_recovered: 3,
            watchdog_nudges: 0,
            txn_retries: 7,
            consistent: true,
        };
        let clean = ChaosPoint {
            fault_rate: 0.0,
            submitted: 110,
            committed: 100,
            aborted: 6,
            gave_up: 1,
            shed: 3,
            timed_out: 0,
            failed: 0,
            goodput_tps: 1000.0,
            faults_injected: 0,
            flush_retries: 0,
            durability_lost: 0,
            panics_recovered: 0,
            txn_retries: 0,
            ..point.clone()
        };
        let summary = ChaosSummary {
            interval_ms: 80,
            clients: 4,
            branches: 2,
            log_streams: 2,
            seed: CHAOS_SEED,
            fault_points: vec![0.0, 0.02],
            deterministic: true,
            series: vec![ChaosSeries {
                system: "DORA",
                healing: true,
                points: vec![clean, point],
            }],
        };
        assert!((summary.series[0].retention(&summary.series[0].points[1]) - 0.9).abs() < 1e-9);
        let json = summary.to_json();
        assert!(json.contains("\"experiment\": \"chaos\""), "{json}");
        assert!(json.contains("\"label\": \"DORA+healing\""), "{json}");
        assert!(json.contains("\"deterministic\": true"), "{json}");
        assert!(json.contains("\"retention\": 0.900"), "{json}");
        assert!(json.contains("\"fault_points\": [0,0.02]"), "{json}");
        assert!(json.contains("\"watchdog_nudges\": 0"), "{json}");
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close} in {json}"
            );
        }
    }

    #[test]
    fn skew_summary_renders_valid_json_shape() {
        let summary = SkewSummary {
            theta: 0.99,
            keys: 100,
            executors: 2,
            clients: 3,
            interval_ms: 80,
            phases: vec![SkewPhase {
                label: "adaptive",
                before_tps: 1000.5,
                after_tps: 2000.25,
                resizes: 3,
                final_loads: vec![40, 60],
            }],
        };
        let json = summary.to_json();
        assert!(json.contains("\"experiment\": \"skew\""), "{json}");
        assert!(json.contains("\"theta\": 0.99"), "{json}");
        assert!(json.contains("\"resizes\": 3"), "{json}");
        assert!(json.contains("\"final_loads\": [40,60]"), "{json}");
        assert!(json.contains("\"load_ratio\": 1.500"), "{json}");
        // Balanced braces/brackets — the cheapest structural validity check
        // without a JSON parser in the workspace.
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close} in {json}"
            );
        }
    }

    #[test]
    fn dispatch_summary_renders_valid_json_shape() {
        let summary = DispatchSummary {
            keys: 64,
            fanout: 4,
            executors: 2,
            clients: 3,
            interval_ms: 80,
            modes: vec![
                DispatchMode {
                    label: "per-message",
                    tps: 1000.0,
                    committed: 100,
                    aborted: 1,
                    actions: 400,
                    messages: 500,
                    producer_batches: 500,
                    inbox_drains: 500,
                },
                DispatchMode {
                    label: "batched",
                    tps: 2000.0,
                    committed: 200,
                    aborted: 0,
                    actions: 800,
                    messages: 1000,
                    producer_batches: 250,
                    inbox_drains: 125,
                },
            ],
        };
        let json = summary.to_json();
        assert!(json.contains("\"experiment\": \"dispatch\""), "{json}");
        assert!(json.contains("\"label\": \"per-message\""), "{json}");
        assert!(json.contains("\"label\": \"batched\""), "{json}");
        assert!(json.contains("\"mutex_acq_per_action\": 2.5000"), "{json}");
        assert!(json.contains("\"avg_drain_batch\": 8.000"), "{json}");
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close} in {json}"
            );
        }
    }

    #[test]
    fn commit_summary_renders_valid_json_shape() {
        let summary = CommitSummary {
            branches: 8,
            clients: 4,
            interval_ms: 80,
            flush_points: vec![15, 60],
            stream_points: vec![1, 4],
            rows: vec![
                CommitRow {
                    engine: "Baseline",
                    mode: "sync",
                    flush_us: 15,
                    streams: 1,
                    tps: 1000.0,
                    committed: 100,
                    flush_groups: 0,
                    mean_group: 0.0,
                    max_group: 0,
                    elr_releases: 0,
                    commit_wait_us: 25.5,
                    latency_us: 120.0,
                },
                CommitRow {
                    engine: "DORA",
                    mode: "group+elr",
                    flush_us: 60,
                    streams: 4,
                    tps: 2500.0,
                    committed: 250,
                    flush_groups: 40,
                    mean_group: 6.25,
                    max_group: 16,
                    elr_releases: 250,
                    commit_wait_us: 80.0,
                    latency_us: 150.0,
                },
            ],
        };
        let json = summary.to_json();
        assert!(json.contains("\"experiment\": \"commit\""), "{json}");
        assert!(json.contains("\"flush_points\": [15,60]"), "{json}");
        assert!(json.contains("\"stream_points\": [1,4]"), "{json}");
        assert!(json.contains("\"streams\": 4"), "{json}");
        assert!(json.contains("\"mode\": \"sync\""), "{json}");
        assert!(json.contains("\"mode\": \"group+elr\""), "{json}");
        assert!(json.contains("\"mean_group\": 6.250"), "{json}");
        assert!(json.contains("\"elr_releases\": 250"), "{json}");
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close} in {json}"
            );
        }
    }

    #[test]
    fn recover_summary_renders_valid_json_shape() {
        let summary = RecoverSummary {
            branches: 8,
            txns_per_cell: 3_000,
            stream_points: vec![1, 4],
            rows: vec![
                RecoverRow {
                    streams: 1,
                    workers: 1,
                    txns: 3_000,
                    records: 12_000,
                    delta_records: 6_000,
                    serial_ms: 40.0,
                    parallel_ms: 40.0,
                    checkpoint_ms: 22.0,
                },
                RecoverRow {
                    streams: 4,
                    workers: 4,
                    txns: 3_000,
                    records: 12_000,
                    delta_records: 6_000,
                    serial_ms: 40.0,
                    parallel_ms: 10.0,
                    checkpoint_ms: 6.0,
                },
            ],
        };
        let json = summary.to_json();
        assert!(json.contains("\"experiment\": \"recover\""), "{json}");
        assert!(json.contains("\"stream_points\": [1,4]"), "{json}");
        assert!(json.contains("\"speedup\": 4.000"), "{json}");
        assert!(json.contains("\"parallel_tps\": 300000.0"), "{json}");
        assert!(json.contains("\"delta_records\": 6000"), "{json}");
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close} in {json}"
            );
        }
    }

    #[test]
    fn recover_row_derived_metrics_guard_zero_time() {
        let row = RecoverRow {
            streams: 2,
            workers: 2,
            txns: 100,
            records: 400,
            delta_records: 0,
            serial_ms: 0.0,
            parallel_ms: 0.0,
            checkpoint_ms: 0.0,
        };
        assert_eq!(row.parallel_tps(), 0.0);
        assert_eq!(row.speedup(), 0.0);
    }

    #[test]
    fn commit_flush_points_are_nonzero() {
        let scale = micro_scale();
        let points = scale.commit_flush_points();
        assert_eq!(points.len(), 2);
        assert!(points.iter().all(|&p| p > 0));
        assert!(points[1] > points[0]);
    }

    #[test]
    fn dispatch_mode_derived_metrics() {
        let mode = DispatchMode {
            label: "batched",
            tps: 0.0,
            committed: 0,
            aborted: 0,
            actions: 100,
            messages: 120,
            producer_batches: 30,
            inbox_drains: 20,
        };
        assert!((mode.mutex_acquisitions_per_action() - 0.5).abs() < 1e-9);
        assert!((mode.avg_producer_batch() - 4.0).abs() < 1e-9);
        assert!((mode.avg_drain_batch() - 6.0).abs() < 1e-9);
        let zero = DispatchMode {
            actions: 0,
            messages: 0,
            producer_batches: 0,
            inbox_drains: 0,
            ..mode
        };
        // Degenerate runs must not divide by zero.
        assert_eq!(zero.mutex_acquisitions_per_action(), 0.0);
        assert_eq!(zero.avg_producer_batch(), 0.0);
    }

    #[test]
    fn skew_phase_load_ratio_clamps_idle_executors() {
        let phase = SkewPhase {
            label: "static",
            before_tps: 0.0,
            after_tps: 0.0,
            resizes: 0,
            final_loads: vec![100, 0],
        };
        assert_eq!(phase.load_ratio(), 100.0);
        let empty = SkewPhase {
            final_loads: vec![],
            ..phase
        };
        assert_eq!(empty.load_ratio(), 1.0);
    }
}
