//! `repro` — regenerate the figures of the paper's evaluation.
//!
//! ```text
//! cargo run -p dora-bench --release --bin repro -- all --quick
//! cargo run -p dora-bench --release --bin repro -- fig1 fig6 --full
//! cargo run -p dora-bench --release --bin repro -- skew --json=BENCH_skew.json
//! cargo run -p dora-bench --release --bin repro -- dispatch --json
//! cargo run -p dora-bench --release --bin repro -- commit --json
//! cargo run -p dora-bench --release --bin repro -- recover --json
//! cargo run -p dora-bench --release --bin repro -- saturation --json
//! cargo run -p dora-bench --release --bin repro -- chaos --json
//! cargo run -p dora-bench --release --bin repro -- htap --json
//! cargo run -p dora-bench --release --bin repro -- conflicts --json
//! ```
//!
//! Every figure of the evaluation section (and the appendix) has a
//! subcommand; `fig9` is validated by the integration test
//! `payment_twelve_steps` instead of a measurement. Eight experiments are
//! this reproduction's own: `skew` (adaptive repartitioning under a zipfian
//! workload), `dispatch` (the executor message path, per-message vs
//! batched), `commit` (sync vs group commit vs group+ELR durability across
//! log-stream counts), `recover` (serial vs parallel vs checkpoint
//! replay over the partitioned WAL), `saturation` (offered load swept
//! past saturation through the `dora-server` front-end, admission control
//! on/off) and `chaos` (goodput under a seeded deterministic fault
//! schedule — log-device errors, latency spikes, flusher stalls, executor
//! panics — with the self-healing paths off vs on), `htap` (live
//! analytical snapshot scans against full-load OLTP: interference,
//! scan throughput, snapshot staleness and the scans' lock-freedom) and
//! `conflicts` (static conflict analysis over the declared step templates:
//! lock-probe elision off vs on, the probe drop and the bind-time report).
//! Each optionally emits a
//! machine-readable summary for CI's bench-smoke artifacts via
//! `--json[=path]` (defaults `BENCH_skew.json` / `BENCH_dispatch.json` /
//! `BENCH_commit.json` / `BENCH_recover.json` / `BENCH_saturation.json` /
//! `BENCH_chaos.json` / `BENCH_htap.json` / `BENCH_conflicts.json`; an
//! explicit path applies
//! when a single JSON-producing experiment is requested, otherwise each
//! falls back to its default). Reports are printed to stdout; absolute numbers depend on the
//! host, but the *shapes* the paper reports (who wins, where the baseline
//! collapses, which components dominate the breakdowns) should reproduce.
//! See `EXPERIMENTS.md`.

use dora_bench::{experiments, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let scale = if full { Scale::full() } else { Scale::quick() };
    let json_requested = args
        .iter()
        .any(|a| a == "--json" || a.starts_with("--json="));
    let json_explicit: Option<String> = args
        .iter()
        .find_map(|a| a.strip_prefix("--json=").map(str::to_string));
    let requested: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let run_all = requested.is_empty() || requested.iter().any(|a| a.as_str() == "all");

    // The JSON-producing experiments each have a default artifact path; an
    // explicit --json=path only applies when exactly one of them runs, so
    // two experiments never clobber one file.
    let json_producers_requested = if run_all {
        8
    } else {
        [
            "skew",
            "dispatch",
            "commit",
            "recover",
            "saturation",
            "chaos",
            "htap",
            "conflicts",
        ]
        .iter()
        .filter(|name| requested.iter().any(|a| a.as_str() == **name))
        .count()
    };
    let json_path_for = |default: &str| -> Option<String> {
        if !json_requested {
            return None;
        }
        match (&json_explicit, json_producers_requested) {
            (Some(path), 1) => Some(path.clone()),
            _ => Some(default.to_string()),
        }
    };
    if json_explicit.is_some() && json_producers_requested > 1 {
        eprintln!(
            "note: --json=<path> with several JSON experiments — each writes its default file"
        );
    }

    let write_json = |path: &str, contents: String| {
        std::fs::write(path, contents).unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("wrote {path}");
    };
    let run_skew = |scale: &Scale| {
        let (report, summary) = experiments::skew_with_summary(scale);
        println!("{report}");
        if let Some(path) = json_path_for("BENCH_skew.json") {
            write_json(&path, summary.to_json());
        }
    };
    let run_dispatch = |scale: &Scale| {
        let (report, summary) = experiments::dispatch_with_summary(scale);
        println!("{report}");
        if let Some(path) = json_path_for("BENCH_dispatch.json") {
            write_json(&path, summary.to_json());
        }
    };
    let run_commit = |scale: &Scale| {
        let (report, summary) = experiments::commit_with_summary(scale);
        println!("{report}");
        if let Some(path) = json_path_for("BENCH_commit.json") {
            write_json(&path, summary.to_json());
        }
    };
    let run_recover = |scale: &Scale| {
        let (report, summary) = experiments::recover_with_summary(scale);
        println!("{report}");
        if let Some(path) = json_path_for("BENCH_recover.json") {
            write_json(&path, summary.to_json());
        }
    };
    let run_saturation = |scale: &Scale| {
        let (report, summary) = experiments::saturation_with_summary(scale);
        println!("{report}");
        if let Some(path) = json_path_for("BENCH_saturation.json") {
            write_json(&path, summary.to_json());
        }
    };
    let run_chaos = |scale: &Scale| {
        let (report, summary) = experiments::chaos_with_summary(scale);
        println!("{report}");
        if let Some(path) = json_path_for("BENCH_chaos.json") {
            write_json(&path, summary.to_json());
        }
    };
    let run_htap = |scale: &Scale| {
        let (report, summary) = experiments::htap_with_summary(scale);
        println!("{report}");
        if let Some(path) = json_path_for("BENCH_htap.json") {
            write_json(&path, summary.to_json());
        }
    };
    let run_conflicts = |scale: &Scale| {
        let (report, summary) = experiments::conflicts_with_summary(scale);
        println!("{report}");
        if let Some(path) = json_path_for("BENCH_conflicts.json") {
            write_json(&path, summary.to_json());
        }
    };

    if run_all {
        println!(
            "running every experiment at {} scale\n",
            if full { "full" } else { "quick" }
        );
        for report in experiments::figures(&scale) {
            println!("{report}");
        }
        // One measurement per experiment serves both the printed report and
        // the (optional) JSON artifact.
        run_skew(&scale);
        run_dispatch(&scale);
        run_commit(&scale);
        run_recover(&scale);
        run_saturation(&scale);
        run_chaos(&scale);
        run_htap(&scale);
        run_conflicts(&scale);
        return;
    }

    let mut unknown = Vec::new();
    let mut ran_json_producer = false;
    for name in requested {
        match name.as_str() {
            "skew" => {
                run_skew(&scale);
                ran_json_producer = true;
            }
            "dispatch" => {
                run_dispatch(&scale);
                ran_json_producer = true;
            }
            "commit" => {
                run_commit(&scale);
                ran_json_producer = true;
            }
            "recover" => {
                run_recover(&scale);
                ran_json_producer = true;
            }
            "saturation" => {
                run_saturation(&scale);
                ran_json_producer = true;
            }
            "chaos" => {
                run_chaos(&scale);
                ran_json_producer = true;
            }
            "htap" => {
                run_htap(&scale);
                ran_json_producer = true;
            }
            "conflicts" => {
                run_conflicts(&scale);
                ran_json_producer = true;
            }
            other => match experiments::by_name(other, &scale) {
                Some(report) => println!("{report}"),
                None => unknown.push(other.to_string()),
            },
        }
    }
    if json_requested && !ran_json_producer {
        eprintln!(
            "warning: --json ignored — none of skew/dispatch/commit/recover/saturation/chaos/htap/conflicts was requested"
        );
    }
    if !unknown.is_empty() {
        eprintln!(
            "unknown experiment(s): {} (valid: fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig10 fig11 skew dispatch commit recover saturation chaos htap conflicts all)",
            unknown.join(", ")
        );
        std::process::exit(2);
    }
}
