//! `repro` — regenerate the figures of the paper's evaluation.
//!
//! ```text
//! cargo run -p dora-bench --release --bin repro -- all --quick
//! cargo run -p dora-bench --release --bin repro -- fig1 fig6 --full
//! ```
//!
//! Every figure of the evaluation section (and the appendix) has a
//! subcommand; `fig9` is validated by the integration test
//! `payment_twelve_steps` instead of a measurement. Reports are printed to
//! stdout; absolute numbers depend on the host, but the *shapes* the paper
//! reports (who wins, where the baseline collapses, which components dominate
//! the breakdowns) should reproduce. See `EXPERIMENTS.md`.

use dora_bench::{experiments, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let scale = if full { Scale::full() } else { Scale::quick() };
    let requested: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    if requested.is_empty() || requested.iter().any(|a| a.as_str() == "all") {
        println!(
            "running every experiment at {} scale\n",
            if full { "full" } else { "quick" }
        );
        for report in experiments::all(&scale) {
            println!("{report}");
        }
        return;
    }

    let mut unknown = Vec::new();
    for name in requested {
        match experiments::by_name(name, &scale) {
            Some(report) => println!("{report}"),
            None => unknown.push(name.clone()),
        }
    }
    if !unknown.is_empty() {
        eprintln!(
            "unknown experiment(s): {} (valid: fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig10 fig11 all)",
            unknown.join(", ")
        );
        std::process::exit(2);
    }
}
