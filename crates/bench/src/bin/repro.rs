//! `repro` — regenerate the figures of the paper's evaluation.
//!
//! ```text
//! cargo run -p dora-bench --release --bin repro -- all --quick
//! cargo run -p dora-bench --release --bin repro -- fig1 fig6 --full
//! cargo run -p dora-bench --release --bin repro -- skew --json=BENCH_skew.json
//! ```
//!
//! Every figure of the evaluation section (and the appendix) has a
//! subcommand; `fig9` is validated by the integration test
//! `payment_twelve_steps` instead of a measurement. `skew` is this
//! reproduction's own experiment: adaptive repartitioning under a zipfian
//! workload, optionally emitting a machine-readable summary for CI's
//! bench-smoke artifact via `--json[=path]` (default `BENCH_skew.json`).
//! Reports are printed to stdout; absolute numbers depend on the host, but
//! the *shapes* the paper reports (who wins, where the baseline collapses,
//! which components dominate the breakdowns) should reproduce. See
//! `EXPERIMENTS.md`.

use dora_bench::{experiments, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let scale = if full { Scale::full() } else { Scale::quick() };
    let json_path: Option<String> = args.iter().find_map(|a| {
        if a == "--json" {
            Some("BENCH_skew.json".to_string())
        } else {
            a.strip_prefix("--json=").map(str::to_string)
        }
    });
    let requested: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    // The machine-readable skew summary is produced whenever --json is given
    // and the skew experiment runs (directly or as part of `all`).
    let run_skew_with_json = |scale: &Scale| {
        let (report, summary) = experiments::skew_with_summary(scale);
        println!("{report}");
        if let Some(path) = &json_path {
            std::fs::write(path, summary.to_json()).unwrap_or_else(|e| panic!("write {path}: {e}"));
            eprintln!("wrote {path}");
        }
    };

    if requested.is_empty() || requested.iter().any(|a| a.as_str() == "all") {
        println!(
            "running every experiment at {} scale\n",
            if full { "full" } else { "quick" }
        );
        for report in experiments::figures(&scale) {
            println!("{report}");
        }
        // One skew measurement serves both the printed report and the
        // (optional) JSON artifact.
        run_skew_with_json(&scale);
        return;
    }

    let mut unknown = Vec::new();
    let mut ran_skew = false;
    for name in requested {
        if name.as_str() == "skew" {
            run_skew_with_json(&scale);
            ran_skew = true;
            continue;
        }
        match experiments::by_name(name, &scale) {
            Some(report) => println!("{report}"),
            None => unknown.push(name.clone()),
        }
    }
    if !ran_skew {
        if let Some(path) = &json_path {
            eprintln!("warning: --json={path} ignored — the skew experiment was not requested");
        }
    }
    if !unknown.is_empty() {
        eprintln!(
            "unknown experiment(s): {} (valid: fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig10 fig11 skew all)",
            unknown.join(", ")
        );
        std::process::exit(2);
    }
}
