//! Shared scaffolding for the experiments: workload construction at the
//! chosen scale, engine setup and driver runs.

use std::sync::Arc;
use std::time::Duration;

use dora_common::{config::num_cpus, SystemConfig};
use dora_core::DoraConfig;
use dora_engine::{build_engine_with, ClientDriver, DriverConfig, ExecutionEngine, RunResult};
use dora_storage::Database;
use dora_workloads::{Workload, WorkloadStats};

/// Which engine a run exercises. This is the registered engine kind itself:
/// the harness never branches on it — [`prepare`] hands it to the engine
/// factory and everything downstream drives an `Arc<dyn ExecutionEngine>`.
pub use dora_common::EngineKind as SystemUnderTest;

/// Experiment scale: `quick` keeps dataset sizes and measurement intervals
/// small enough for CI; `full` approaches the paper's setup more closely.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Measured interval per driver run.
    pub duration: Duration,
    /// Warm-up excluded from measurements.
    pub warmup: Duration,
    /// TM1 subscribers.
    pub tm1_subscribers: i64,
    /// TPC-C warehouses.
    pub tpcc_warehouses: i64,
    /// TPC-C customers per district.
    pub tpcc_customers_per_district: i64,
    /// TPC-C catalog items.
    pub tpcc_items: i64,
    /// TPC-B branches.
    pub tpcb_branches: i64,
    /// TPC-B accounts per branch.
    pub tpcb_accounts_per_branch: i64,
    /// DORA executors per table.
    pub executors_per_table: usize,
    /// Hardware contexts the offered load is normalized against.
    pub hardware_contexts: usize,
    /// Simulated log-flush latency in microseconds.
    pub log_flush_micros: u64,
    /// Counter rows for the skewed-counters workload (the adaptive
    /// repartitioning experiment).
    pub skew_keys: i64,
    /// Zipfian skew parameter θ for the skewed-counters workload.
    pub zipf_theta: f64,
    /// Counter rows for the fan-out workload (the `dispatch` message-path
    /// experiment).
    pub fanout_keys: i64,
    /// Counters bumped per fan-out transaction — the phase's action count,
    /// i.e. how many messages one dispatch sprays across the executors.
    pub fanout_actions: usize,
    /// Pacing interval for the `htap` experiment's analytical clients: each
    /// scan thread starts one snapshot sweep per interval (back-to-back when
    /// a sweep runs longer). Pacing makes the analytical load scale with the
    /// thread count while keeping the scan-side CPU demand bounded, so the
    /// OLTP-interference measurement isolates lock/latch effects instead of
    /// raw CPU oversubscription on small hosts.
    pub htap_scan_interval: Duration,
    /// Log-stream counts swept by the `commit` and `recover` durability
    /// experiments (the partitioned-WAL axis). Always starts at 1 so every
    /// multi-stream row has its single-stream baseline in the same matrix.
    pub log_stream_points: Vec<usize>,
    /// Transactions logged before the `recover` experiment measures replay.
    pub recover_txns: usize,
}

impl Scale {
    /// Quick scale for CI and `--quick` runs (a few seconds per figure).
    ///
    /// The offered-load normalization assumes at least 8 hardware contexts:
    /// on hosts with fewer cores the load sweep then still varies the client
    /// count (oversubscribing the CPU), which is the only way to create the
    /// critical-section pressure the paper studies on such machines.
    pub fn quick() -> Self {
        let contexts = num_cpus().max(8);
        Self {
            duration: Duration::from_millis(250),
            warmup: Duration::from_millis(60),
            tm1_subscribers: 2_000,
            tpcc_warehouses: 4,
            tpcc_customers_per_district: 60,
            tpcc_items: 200,
            tpcb_branches: 8,
            tpcb_accounts_per_branch: 200,
            executors_per_table: (contexts / 4).clamp(1, 4),
            hardware_contexts: contexts,
            log_flush_micros: 20,
            skew_keys: 2_000,
            zipf_theta: 0.99,
            fanout_keys: 4_096,
            fanout_actions: 8,
            htap_scan_interval: Duration::from_millis(50),
            log_stream_points: vec![1, 4],
            recover_txns: 3_000,
        }
    }

    /// Full scale: larger datasets and longer measured intervals. Still sized
    /// for a commodity multicore rather than the paper's 64-context Niagara.
    pub fn full() -> Self {
        let contexts = num_cpus().max(8);
        Self {
            duration: Duration::from_secs(2),
            warmup: Duration::from_millis(500),
            tm1_subscribers: 100_000,
            tpcc_warehouses: 16,
            tpcc_customers_per_district: 300,
            tpcc_items: 1_000,
            tpcb_branches: 100,
            tpcb_accounts_per_branch: 1_000,
            executors_per_table: (contexts / 4).clamp(1, 8),
            hardware_contexts: contexts,
            log_flush_micros: 40,
            skew_keys: 50_000,
            zipf_theta: 0.99,
            fanout_keys: 65_536,
            fanout_actions: 8,
            htap_scan_interval: Duration::from_millis(200),
            log_stream_points: vec![1, 2, 4, 8],
            recover_txns: 30_000,
        }
    }

    /// The offered-CPU-load points (percent) swept by the load-sweep figures,
    /// including one point past saturation like the paper's x-axes.
    pub fn load_points(&self) -> Vec<f64> {
        vec![25.0, 50.0, 75.0, 100.0, 110.0]
    }

    /// The offered-load points (percent) swept by the `saturation`
    /// experiment: from well under saturation to 2× over it, so the series
    /// show what each system does once arrivals outpace the hardware — the
    /// regime of the paper's Figures 6 and 8 where the conventional system
    /// collapses and admission control is supposed to hold the peak.
    pub fn saturation_points(&self) -> Vec<f64> {
        vec![50.0, 75.0, 100.0, 150.0, 200.0]
    }

    /// Client-thread count producing approximately `percent` offered load.
    pub fn clients_for(&self, percent: f64) -> usize {
        ((percent / 100.0) * self.hardware_contexts as f64)
            .round()
            .max(1.0) as usize
    }

    /// Storage configuration at this scale.
    pub fn system_config(&self) -> SystemConfig {
        SystemConfig {
            hardware_contexts: self.hardware_contexts,
            log_flush_micros: self.log_flush_micros,
            buffer_pool_pages: 200_000,
            ..SystemConfig::default()
        }
    }

    /// TM1 at this scale.
    pub fn tm1(&self) -> dora_workloads::Tm1 {
        dora_workloads::Tm1::new(self.tm1_subscribers)
    }

    /// TPC-C at this scale.
    pub fn tpcc(&self) -> dora_workloads::Tpcc {
        dora_workloads::Tpcc::with_scale(
            self.tpcc_warehouses,
            self.tpcc_customers_per_district,
            self.tpcc_items,
        )
    }

    /// TPC-B at this scale.
    pub fn tpcb(&self) -> dora_workloads::TpcB {
        dora_workloads::TpcB::with_accounts(self.tpcb_branches, self.tpcb_accounts_per_branch)
    }

    /// The zipfian skewed-counters workload at this scale (static hot range;
    /// callers add drift for the migration scenario).
    pub fn skewed(&self) -> dora_workloads::SkewedCounters {
        dora_workloads::SkewedCounters::new(self.skew_keys, self.zipf_theta)
    }

    /// The high-fan-out counters workload at this scale (the `dispatch`
    /// message-path experiment).
    pub fn fanout(&self) -> dora_workloads::FanoutCounters {
        dora_workloads::FanoutCounters::new(self.fanout_keys, self.fanout_actions)
    }

    /// Fault rates swept by the `chaos` experiment: a moderate rate where
    /// the self-healing paths should hold goodput near the fault-free
    /// level, and a harsher one where even the healed system visibly pays.
    /// The fault-free 0.0 every series is normalized against is prepended
    /// by the experiment itself. Rates are probabilities, so the points
    /// are scale-independent.
    pub fn chaos_fault_points(&self) -> Vec<f64> {
        vec![0.02, 0.08]
    }

    /// Simulated log-device latencies (µs) the `commit` durability
    /// experiment sweeps: the scale's own flush latency and a 4× slower
    /// device, where group commit matters proportionally more. Clamped away
    /// from zero — the experiment's point is a nonzero durability window.
    pub fn commit_flush_points(&self) -> Vec<u64> {
        let base = self.log_flush_micros.max(15);
        vec![base, base * 4]
    }
}

/// A fully prepared system: database + loaded workload + bound engine.
pub struct PreparedSystem {
    /// The storage manager.
    pub db: Arc<Database>,
    /// The workload (already loaded into `db` and bound to `engine`).
    pub workload: Arc<dyn Workload>,
    /// The engine under test, already bound to `workload`.
    pub engine: Arc<dyn ExecutionEngine>,
}

impl PreparedSystem {
    /// Shuts down any engine-owned threads.
    pub fn shutdown(&self) {
        self.engine.shutdown();
    }
}

/// Builds a database, loads `workload` into it and binds it to the requested
/// engine via the engine factory — no per-architecture code here.
pub fn prepare(
    workload: impl Workload + 'static,
    scale: &Scale,
    system: SystemUnderTest,
) -> PreparedSystem {
    prepare_with_config(workload, scale, system, DoraConfig::default())
}

/// [`prepare`] with an explicit DORA configuration — the hook experiments use
/// to pin configuration axes (e.g. `conflict_elision` off for the A/B
/// baseline of the `conflicts` experiment, or for Figure 11, whose hand-built
/// DORA-P plan must not be silently auto-serialized by the conflict
/// analyzer).
pub fn prepare_with_config(
    workload: impl Workload + 'static,
    scale: &Scale,
    system: SystemUnderTest,
    dora_config: DoraConfig,
) -> PreparedSystem {
    let db = Database::new(scale.system_config());
    workload.setup(&db).expect("workload setup");
    let workload: Arc<dyn Workload> = Arc::new(workload);
    let engine = build_engine_with(system, Arc::clone(&db), dora_config);
    engine
        .bind(Arc::clone(&workload), scale.executors_per_table)
        .expect("bind workload");
    PreparedSystem {
        db,
        workload,
        engine,
    }
}

/// Runs `clients` closed-loop clients against the prepared system for the
/// scale's measured interval.
pub fn run_clients(prepared: &PreparedSystem, scale: &Scale, clients: usize) -> RunResult {
    let driver = ClientDriver::new(DriverConfig {
        clients,
        duration: scale.duration,
        warmup: scale.warmup,
        hardware_contexts: scale.hardware_contexts,
    });
    driver.run_engine(Arc::clone(&prepared.engine))
}

/// [`run_clients`], also tallying each transaction's type, outcome and
/// response time into `stats`. Each client records into its own private
/// recorder (merged at the end) so the tallies add no shared mutex to the
/// measured hot path. The tallies include the warm-up interval — they
/// characterize the mix, not the measured window.
pub fn run_clients_timed(
    prepared: &PreparedSystem,
    scale: &Scale,
    clients: usize,
    stats: &WorkloadStats,
) -> RunResult {
    let driver = ClientDriver::new(DriverConfig {
        clients,
        duration: scale.duration,
        warmup: scale.warmup,
        hardware_contexts: scale.hardware_contexts,
    });
    let per_client: Vec<WorkloadStats> = (0..clients).map(|_| WorkloadStats::new()).collect();
    let result = {
        let engine = Arc::clone(&prepared.engine);
        let per_client = per_client.clone();
        driver.run(move |client, rng| engine.execute_one_timed(rng, &per_client[client]))
    };
    for recorder in &per_client {
        stats.merge(recorder);
    }
    result
}

/// One-call helper: prepare the system, sweep the given offered-load points
/// and return `(load_percent, RunResult)` pairs. The system is shut down
/// before returning.
pub fn sweep(
    workload: impl Workload + 'static,
    scale: &Scale,
    system: SystemUnderTest,
    load_points: &[f64],
) -> Vec<(f64, RunResult)> {
    sweep_stats(workload, scale, system, load_points).0
}

/// [`sweep`], also returning the per-transaction-type tallies (outcomes and
/// response times) aggregated across every load point of the sweep — the
/// rows of the pg_meter-style summary table the reports print.
pub fn sweep_stats(
    workload: impl Workload + 'static,
    scale: &Scale,
    system: SystemUnderTest,
    load_points: &[f64],
) -> (Vec<(f64, RunResult)>, WorkloadStats) {
    sweep_stats_with_config(workload, scale, system, load_points, DoraConfig::default())
}

/// [`sweep`] with an explicit DORA configuration (see
/// [`prepare_with_config`]). The system is shut down before returning.
pub fn sweep_with_config(
    workload: impl Workload + 'static,
    scale: &Scale,
    system: SystemUnderTest,
    load_points: &[f64],
    dora_config: DoraConfig,
) -> Vec<(f64, RunResult)> {
    sweep_stats_with_config(workload, scale, system, load_points, dora_config).0
}

/// [`sweep_stats`] with an explicit DORA configuration (see
/// [`prepare_with_config`]).
pub fn sweep_stats_with_config(
    workload: impl Workload + 'static,
    scale: &Scale,
    system: SystemUnderTest,
    load_points: &[f64],
    dora_config: DoraConfig,
) -> (Vec<(f64, RunResult)>, WorkloadStats) {
    let prepared = prepare_with_config(workload, scale, system, dora_config);
    let stats = WorkloadStats::for_workload(&*prepared.workload);
    let mut results = Vec::with_capacity(load_points.len());
    for &load in load_points {
        let clients = scale.clients_for(load);
        results.push((load, run_clients_timed(&prepared, scale, clients, &stats)));
    }
    prepared.shutdown();
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dora_workloads::{Tm1, Tm1Mix};

    fn tiny_scale() -> Scale {
        Scale {
            duration: Duration::from_millis(60),
            warmup: Duration::from_millis(10),
            tm1_subscribers: 200,
            tpcc_warehouses: 1,
            tpcc_customers_per_district: 20,
            tpcc_items: 20,
            tpcb_branches: 2,
            tpcb_accounts_per_branch: 20,
            executors_per_table: 2,
            hardware_contexts: 4,
            log_flush_micros: 0,
            skew_keys: 100,
            zipf_theta: 0.99,
            fanout_keys: 64,
            fanout_actions: 4,
            htap_scan_interval: Duration::from_millis(5),
            log_stream_points: vec![1, 2],
            recover_txns: 120,
        }
    }

    #[test]
    fn scale_maps_load_to_clients() {
        let scale = tiny_scale();
        assert_eq!(scale.clients_for(100.0), 4);
        assert_eq!(scale.clients_for(50.0), 2);
        assert_eq!(scale.clients_for(1.0), 1);
        assert_eq!(scale.load_points().len(), 5);
    }

    #[test]
    fn sweep_stats_tallies_per_type_rows() {
        let scale = tiny_scale();
        let (results, stats) = sweep_stats(
            Tm1::new(scale.tm1_subscribers),
            &scale,
            SystemUnderTest::Baseline,
            &[50.0],
        );
        assert_eq!(results.len(), 1);
        let rows = stats.all_stats();
        assert!(!rows.is_empty(), "mix labels pre-registered");
        let total: u64 = rows.iter().map(|(_, s)| s.total()).sum();
        assert!(total > 0, "the sweep tallied no transactions");
        let timed: u64 = rows.iter().map(|(_, s)| s.latency.count()).sum();
        assert_eq!(total, timed, "every tallied transaction was timed");
    }

    #[test]
    fn every_registered_engine_produces_commits() {
        let scale = tiny_scale();
        for system in SystemUnderTest::ALL {
            let workload = Tm1::new(scale.tm1_subscribers).with_mix(Tm1Mix::GetSubscriberDataOnly);
            let prepared = prepare(workload, &scale, system);
            let result = run_clients(&prepared, &scale, 2);
            assert!(
                result.committed > 0,
                "{} run produced no commits",
                system.label()
            );
            prepared.shutdown();
        }
    }
}
