//! Flood the serving front-end far past saturation and check that
//! admission control keeps its promises: the queue stays bounded, every
//! submission is accounted for exactly once (submitted = committed +
//! aborted + gave-up + shed), and `close` drains gracefully under fire.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use dora_common::prelude::*;
use dora_server::{AdmissionConfig, Server, ServerConfig, SubmitOutcome};
use dora_storage::Database;
use dora_workloads::{TpcB, Workload};

const MAX_ACTIVE: usize = 2;
const MAX_QUEUED: usize = 3;

fn flood_server(engine: EngineKind) -> (Server, dora_server::Statement) {
    let tpcb = TpcB::with_accounts(4, 64);
    let db = Database::for_tests();
    tpcb.setup(&db).unwrap();
    let workload = Arc::new(tpcb);
    let server = Server::open(
        Arc::clone(&db),
        workload.clone(),
        ServerConfig::for_tests(engine).with_admission(Some(AdmissionConfig {
            max_active: MAX_ACTIVE,
            max_queued: MAX_QUEUED,
        })),
    )
    .unwrap();
    let program = workload.account_update_program(&db, 1, 1, 1, 2.5).unwrap();
    let statement = server.prepare(program).unwrap();
    (server, statement)
}

#[derive(Default)]
struct Tally {
    submitted: AtomicUsize,
    committed: AtomicUsize,
    aborted: AtomicUsize,
    gave_up: AtomicUsize,
    shed: AtomicUsize,
}

impl Tally {
    fn record(&self, outcome: SubmitOutcome) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        let bucket = match outcome {
            SubmitOutcome::Committed => &self.committed,
            SubmitOutcome::Aborted => &self.aborted,
            SubmitOutcome::GaveUp => &self.gave_up,
            SubmitOutcome::Shed => &self.shed,
        };
        bucket.fetch_add(1, Ordering::Relaxed);
    }
}

#[test]
fn flood_respects_queue_bound_and_accounts_for_every_submission() {
    for engine in [EngineKind::Baseline, EngineKind::Dora] {
        let (server, statement) = flood_server(engine);
        let server = Arc::new(server);
        let tally = Arc::new(Tally::default());
        let stop = Arc::new(AtomicBool::new(false));

        // A monitor samples the gate while the flood runs: the admission
        // bounds are invariants, so no sample may ever exceed them.
        let monitor = {
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut max_active = 0;
                let mut max_queued = 0;
                while !stop.load(Ordering::Relaxed) {
                    max_active = max_active.max(server.in_flight());
                    max_queued = max_queued.max(server.queue_depth());
                    thread::yield_now();
                }
                (max_active, max_queued)
            })
        };

        // 4x more flooders than execution+queue slots: shedding must kick in.
        let flooders: Vec<_> = (0..(MAX_ACTIVE + MAX_QUEUED) * 4)
            .map(|_| {
                let session = server.session_with_window(2);
                let statement = statement.clone();
                let tally = Arc::clone(&tally);
                thread::spawn(move || {
                    for _ in 0..50 {
                        tally.record(session.execute(&statement));
                    }
                })
            })
            .collect();
        for flooder in flooders {
            flooder.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        let (max_active, max_queued) = monitor.join().unwrap();

        assert!(
            max_active <= MAX_ACTIVE,
            "{engine:?}: observed {max_active} active > bound {MAX_ACTIVE}"
        );
        assert!(
            max_queued <= MAX_QUEUED,
            "{engine:?}: observed {max_queued} queued > bound {MAX_QUEUED}"
        );

        // Exactness: every submission resolved to exactly one outcome.
        let submitted = tally.submitted.load(Ordering::Relaxed);
        let resolved = tally.committed.load(Ordering::Relaxed)
            + tally.aborted.load(Ordering::Relaxed)
            + tally.gave_up.load(Ordering::Relaxed)
            + tally.shed.load(Ordering::Relaxed);
        assert_eq!(submitted, (MAX_ACTIVE + MAX_QUEUED) * 4 * 50);
        assert_eq!(
            submitted, resolved,
            "{engine:?}: submitted != committed+aborted+gave_up+shed"
        );
        assert!(
            tally.committed.load(Ordering::Relaxed) > 0,
            "{engine:?}: the flood should still commit work"
        );

        server.close();
        assert_eq!(server.in_flight(), 0);
        assert_eq!(server.queue_depth(), 0);
    }
}

#[test]
fn close_drains_gracefully_under_fire() {
    let (server, statement) = flood_server(EngineKind::Dora);
    let server = Arc::new(server);
    let tally = Arc::new(Tally::default());

    // Flooders submit until they see the drain (their first shed).
    let flooders: Vec<_> = (0..8)
        .map(|_| {
            let server = Arc::clone(&server);
            let statement = statement.clone();
            let tally = Arc::clone(&tally);
            thread::spawn(move || {
                let session = server.session();
                loop {
                    let outcome = session.execute(&statement);
                    tally.record(outcome);
                    if outcome.is_shed() {
                        return;
                    }
                }
            })
        })
        .collect();

    // Let the flood reach a steady state, then close underneath it.
    while tally.committed.load(Ordering::Relaxed) < 20 {
        thread::sleep(Duration::from_millis(1));
    }
    server.close();

    // close() returned, so the drain is complete: nothing may still hold
    // an execution slot or a queue slot even while flooders are alive.
    assert_eq!(server.in_flight(), 0);
    assert_eq!(server.queue_depth(), 0);
    assert!(server.is_closed());

    for flooder in flooders {
        flooder.join().unwrap();
    }

    let submitted = tally.submitted.load(Ordering::Relaxed);
    let resolved = tally.committed.load(Ordering::Relaxed)
        + tally.aborted.load(Ordering::Relaxed)
        + tally.gave_up.load(Ordering::Relaxed)
        + tally.shed.load(Ordering::Relaxed);
    assert_eq!(submitted, resolved);
    assert!(
        tally.shed.load(Ordering::Relaxed) >= 8,
        "every flooder ends on a shed"
    );

    // The drained server sheds everything, forever, without blocking.
    let session = server.session();
    for _ in 0..4 {
        assert_eq!(session.execute(&statement), SubmitOutcome::Shed);
    }
}
