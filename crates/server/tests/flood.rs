//! Flood the serving front-end far past saturation and check that
//! admission control keeps its promises: the queue stays bounded, every
//! submission is accounted for exactly once (submitted = committed +
//! aborted + gave-up + shed), and `close` drains gracefully under fire.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use dora_common::prelude::*;
use dora_server::{AdmissionConfig, RetryPolicy, Server, ServerConfig, SubmitOutcome};
use dora_storage::Database;
use dora_workloads::{TpcB, Workload};

const MAX_ACTIVE: usize = 2;
const MAX_QUEUED: usize = 3;

fn flood_server(engine: EngineKind) -> (Server, dora_server::Statement) {
    let tpcb = TpcB::with_accounts(4, 64);
    let db = Database::for_tests();
    tpcb.setup(&db).unwrap();
    let workload = Arc::new(tpcb);
    let server = Server::open(
        Arc::clone(&db),
        workload.clone(),
        ServerConfig::for_tests(engine).with_admission(Some(AdmissionConfig {
            max_active: MAX_ACTIVE,
            max_queued: MAX_QUEUED,
        })),
    )
    .unwrap();
    let program = workload.account_update_program(&db, 1, 1, 1, 2.5).unwrap();
    let statement = server.prepare(program).unwrap();
    (server, statement)
}

#[derive(Default)]
struct Tally {
    submitted: AtomicUsize,
    committed: AtomicUsize,
    aborted: AtomicUsize,
    gave_up: AtomicUsize,
    shed: AtomicUsize,
    timed_out: AtomicUsize,
    failed: AtomicUsize,
}

impl Tally {
    fn record(&self, outcome: SubmitOutcome) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        let bucket = match outcome {
            SubmitOutcome::Committed => &self.committed,
            SubmitOutcome::Aborted => &self.aborted,
            SubmitOutcome::GaveUp => &self.gave_up,
            SubmitOutcome::Shed => &self.shed,
            SubmitOutcome::TimedOut => &self.timed_out,
            SubmitOutcome::Failed => &self.failed,
        };
        bucket.fetch_add(1, Ordering::Relaxed);
    }

    fn resolved(&self) -> usize {
        self.committed.load(Ordering::Relaxed)
            + self.aborted.load(Ordering::Relaxed)
            + self.gave_up.load(Ordering::Relaxed)
            + self.shed.load(Ordering::Relaxed)
            + self.timed_out.load(Ordering::Relaxed)
            + self.failed.load(Ordering::Relaxed)
    }
}

#[test]
fn flood_respects_queue_bound_and_accounts_for_every_submission() {
    for engine in [EngineKind::Baseline, EngineKind::Dora] {
        let (server, statement) = flood_server(engine);
        let server = Arc::new(server);
        let tally = Arc::new(Tally::default());
        let stop = Arc::new(AtomicBool::new(false));

        // A monitor samples the gate while the flood runs: the admission
        // bounds are invariants, so no sample may ever exceed them.
        let monitor = {
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut max_active = 0;
                let mut max_queued = 0;
                while !stop.load(Ordering::Relaxed) {
                    max_active = max_active.max(server.in_flight());
                    max_queued = max_queued.max(server.queue_depth());
                    thread::yield_now();
                }
                (max_active, max_queued)
            })
        };

        // 4x more flooders than execution+queue slots: shedding must kick in.
        let flooders: Vec<_> = (0..(MAX_ACTIVE + MAX_QUEUED) * 4)
            .map(|_| {
                let session = server.session_with_window(2);
                let statement = statement.clone();
                let tally = Arc::clone(&tally);
                thread::spawn(move || {
                    for _ in 0..50 {
                        tally.record(session.execute(&statement));
                    }
                })
            })
            .collect();
        for flooder in flooders {
            flooder.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        let (max_active, max_queued) = monitor.join().unwrap();

        assert!(
            max_active <= MAX_ACTIVE,
            "{engine:?}: observed {max_active} active > bound {MAX_ACTIVE}"
        );
        assert!(
            max_queued <= MAX_QUEUED,
            "{engine:?}: observed {max_queued} queued > bound {MAX_QUEUED}"
        );

        // Exactness: every submission resolved to exactly one outcome.
        let submitted = tally.submitted.load(Ordering::Relaxed);
        let resolved = tally.resolved();
        assert_eq!(submitted, (MAX_ACTIVE + MAX_QUEUED) * 4 * 50);
        assert_eq!(
            submitted, resolved,
            "{engine:?}: submitted != committed+aborted+gave_up+shed"
        );
        assert!(
            tally.committed.load(Ordering::Relaxed) > 0,
            "{engine:?}: the flood should still commit work"
        );

        server.close();
        assert_eq!(server.in_flight(), 0);
        assert_eq!(server.queue_depth(), 0);
    }
}

#[test]
fn close_drains_gracefully_under_fire() {
    let (server, statement) = flood_server(EngineKind::Dora);
    let server = Arc::new(server);
    let tally = Arc::new(Tally::default());

    // Flooders submit until they see the drain (their first shed).
    let flooders: Vec<_> = (0..8)
        .map(|_| {
            let server = Arc::clone(&server);
            let statement = statement.clone();
            let tally = Arc::clone(&tally);
            thread::spawn(move || {
                let session = server.session();
                loop {
                    let outcome = session.execute(&statement);
                    tally.record(outcome);
                    if outcome.is_shed() {
                        return;
                    }
                }
            })
        })
        .collect();

    // Let the flood reach a steady state, then close underneath it.
    while tally.committed.load(Ordering::Relaxed) < 20 {
        thread::sleep(Duration::from_millis(1));
    }
    server.close();

    // close() returned, so the drain is complete: nothing may still hold
    // an execution slot or a queue slot even while flooders are alive.
    assert_eq!(server.in_flight(), 0);
    assert_eq!(server.queue_depth(), 0);
    assert!(server.is_closed());

    for flooder in flooders {
        flooder.join().unwrap();
    }

    let submitted = tally.submitted.load(Ordering::Relaxed);
    assert_eq!(submitted, tally.resolved());
    assert!(
        tally.shed.load(Ordering::Relaxed) >= 8,
        "every flooder ends on a shed"
    );

    // The drained server sheds everything, forever, without blocking.
    let session = server.session();
    for _ in 0..4 {
        assert_eq!(session.execute(&statement), SubmitOutcome::Shed);
    }
}

/// Opens a server whose single execution slot can be pinned by a "slow"
/// template statement (its per-binding build sleeps for `hold`), so tests
/// can force later submissions into the condvar-FIFO admission queue.
fn pinned_server(
    config: ServerConfig,
    hold: Duration,
) -> (Server, dora_server::Statement, dora_server::Statement) {
    let tpcb = TpcB::with_accounts(4, 64);
    let db = Database::for_tests();
    tpcb.setup(&db).unwrap();
    let workload = Arc::new(tpcb);
    let server = Server::open(Arc::clone(&db), workload.clone(), config).unwrap();
    let slow_spec = Arc::clone(&workload);
    let slow = server.prepare_template("slow-transfer", move |db, _| {
        thread::sleep(hold);
        slow_spec.account_update_program(db, 1, 1, 1, 1.0)
    });
    let program = workload
        .account_update_program(&db, 2, 65, 11, 2.0)
        .unwrap();
    let fast = server.prepare(program).unwrap();
    (server, slow, fast)
}

/// The satellite race from the issue: a client parked in the admission
/// queue while `Server::close` fires must observe `Shed` — never hang on
/// the condvar, never lose its queue slot silently.
#[test]
fn queued_waiter_racing_close_observes_shed_not_a_hang() {
    let config =
        ServerConfig::for_tests(EngineKind::Baseline).with_admission(Some(AdmissionConfig {
            max_active: 1,
            max_queued: 4,
        }));
    let (server, slow, fast) = pinned_server(config, Duration::from_millis(100));
    let server = Arc::new(server);

    // Pin the single execution slot.
    let pin = {
        let session = server.session();
        thread::spawn(move || session.execute(&slow))
    };
    while server.in_flight() == 0 {
        thread::yield_now();
    }

    // Park two clients in the queue behind it.
    let queued: Vec<_> = (0..2)
        .map(|_| {
            let session = server.session();
            let fast = fast.clone();
            thread::spawn(move || session.execute(&fast))
        })
        .collect();
    while server.queue_depth() < 2 {
        thread::yield_now();
    }

    // Close under them. close() blocks until the drain completes, so by
    // the time it returns every queued waiter must have resolved.
    server.close();
    assert_eq!(server.queue_depth(), 0);
    assert_eq!(server.in_flight(), 0);

    // The pinned transaction was already admitted: it runs to completion.
    assert!(pin.join().unwrap().is_committed());
    // The queued waiters must observe Shed (close never promotes them).
    for waiter in queued {
        assert_eq!(waiter.join().unwrap(), SubmitOutcome::Shed);
    }
}

#[test]
fn submit_deadline_times_out_queued_work() {
    let config = ServerConfig::for_tests(EngineKind::Baseline)
        .with_admission(Some(AdmissionConfig {
            max_active: 1,
            max_queued: 4,
        }))
        .with_submit_deadline(Duration::from_millis(5));
    let (server, slow, fast) = pinned_server(config, Duration::from_millis(80));
    let server = Arc::new(server);

    let pin = {
        let session = server.session();
        thread::spawn(move || session.execute(&slow))
    };
    while server.in_flight() == 0 {
        thread::yield_now();
    }

    // This submission queues behind the pinned slot and must give up at
    // its deadline — long before the 80ms hold ends.
    let session = server.session();
    let outcome = session.execute(&fast);
    assert_eq!(outcome, SubmitOutcome::TimedOut);
    assert!(outcome.is_timed_out() && outcome.is_safe_to_resubmit());
    assert_eq!(server.queue_depth(), 0, "the timed-out slot was returned");

    assert!(pin.join().unwrap().is_committed());
    server.close();
}

#[test]
fn retry_policy_reruns_aborted_submissions() {
    let tpcb = TpcB::with_accounts(4, 64);
    let db = Database::for_tests();
    tpcb.setup(&db).unwrap();
    let workload = Arc::new(tpcb);
    let server = Server::open(
        Arc::clone(&db),
        workload.clone(),
        ServerConfig::for_tests(EngineKind::Dora).with_retry(RetryPolicy::retries(3)),
    )
    .unwrap();

    // A statement that aborts twice before building a clean program; with
    // three retries the session's final answer must be the commit.
    let attempts = Arc::new(AtomicUsize::new(0));
    let seen = Arc::clone(&attempts);
    let spec = Arc::clone(&workload);
    let flaky = server.prepare_template("flaky-transfer", move |db, _| {
        if seen.fetch_add(1, Ordering::Relaxed) < 2 {
            return Err(DbError::TxnAborted {
                txn: TxnId::INVALID,
                reason: "transient".into(),
            });
        }
        spec.account_update_program(db, 1, 1, 1, 3.0)
    });

    let session = server.session();
    assert_eq!(session.execute(&flaky), SubmitOutcome::Committed);
    assert_eq!(
        attempts.load(Ordering::Relaxed),
        3,
        "two aborts, one commit"
    );
    server.close();
}
