//! The admission gate: the runtime half of admission control, wired into
//! every submit.
//!
//! [`dora_engine::AdmissionController`] decides *what* happens to an
//! arrival (run / queue / shed); this module supplies the *mechanism*:
//! queued submitters park on a condvar until a finishing transaction
//! promotes them, new arrivals are shed outright once the queue is full,
//! and a draining gate (server close) sheds late arrivals while letting
//! everything already admitted or queued finish — the overload response
//! that keeps a saturated system at its peak throughput instead of past
//! it (the paper's Figure 8 premise, made operational).
//!
//! Every controller transition happens under one gate mutex, so promote
//! tokens can never race with cancellations: a `finish` that promotes a
//! queued waiter deposits a token, and exactly one parked waiter consumes
//! it — or, if that waiter already gave up during a drain, the token
//! stays valid for the next queued arrival (it represents a genuinely
//! free execution slot either way).

use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use dora_engine::{AdmissionController, AdmissionDecision};
use dora_metrics::{incr, CounterKind};

/// What the gate resolved an arrival to, after any queueing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum GateOutcome {
    /// The caller holds an execution slot and must call
    /// [`Gate::finish`] when the transaction completes.
    Run,
    /// The arrival was shed (at the queue limit, or while draining).
    Shed,
    /// The arrival's deadline expired while it was parked in the queue;
    /// its queue slot was given back and it never ran.
    TimedOut,
}

#[derive(Debug, Default)]
struct GateState {
    /// Execution slots transferred by `finish` to parked waiters but not
    /// yet consumed.
    tokens: usize,
    /// Set once by [`Gate::close`]; new arrivals are shed from then on.
    draining: bool,
}

/// Admission policy: how many transactions may run at once and how many
/// may wait behind them before arrivals are shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Execution slots (clamped to at least 1).
    pub max_active: usize,
    /// Queue slots behind the execution slots; `0` sheds immediately at
    /// saturation.
    pub max_queued: usize,
}

impl AdmissionConfig {
    /// A policy sized for `max_active` concurrent transactions with a
    /// queue of twice that depth — a reasonable default shed threshold.
    pub fn for_slots(max_active: usize) -> Self {
        Self {
            max_active,
            max_queued: max_active.saturating_mul(2),
        }
    }
}

/// The gate every submit passes through. `None` admission means the gate
/// only tracks in-flight work for the graceful drain (nothing queues,
/// nothing sheds until close).
#[derive(Debug)]
pub(crate) struct Gate {
    controller: AdmissionController,
    state: Mutex<GateState>,
    cond: Condvar,
}

impl Gate {
    pub(crate) fn new(admission: Option<AdmissionConfig>) -> Self {
        let controller = match admission {
            Some(policy) => AdmissionController::new(policy.max_active, policy.max_queued),
            // Effectively unbounded: every arrival admits, so the
            // controller degenerates to an in-flight counter the drain
            // waits on.
            None => AdmissionController::new(usize::MAX / 2, 0),
        };
        Self {
            controller,
            state: Mutex::new(GateState::default()),
            cond: Condvar::new(),
        }
    }

    /// Resolves one arrival: admit now, park until promoted, shed, or —
    /// with a deadline — time out. A queued arrival still parked when
    /// `deadline` expires gives its queue slot back and resolves to
    /// [`GateOutcome::TimedOut`], so a saturated gate degrades into bounded
    /// waiting instead of unbounded queueing delay; `None` waits forever.
    pub(crate) fn admit_within(&self, deadline: Option<Duration>) -> GateOutcome {
        let mut state = self.state.lock();
        if state.draining {
            incr(CounterKind::TxnShed);
            return GateOutcome::Shed;
        }
        match self.controller.admit() {
            AdmissionDecision::Admit => GateOutcome::Run,
            AdmissionDecision::Shed => {
                incr(CounterKind::TxnShed);
                GateOutcome::Shed
            }
            AdmissionDecision::Queue => {
                incr(CounterKind::TxnQueued);
                let parked = Instant::now();
                loop {
                    // Wait *before* checking for a token: a promote's
                    // queue-slot decrement already named some parked
                    // waiter, so a fresh arrival grabbing the token
                    // without ever sleeping would leave that waiter
                    // parked with nothing left to promote it.
                    match deadline {
                        None => self.cond.wait(&mut state),
                        Some(limit) => {
                            let remaining = limit.saturating_sub(parked.elapsed());
                            let _ = self.cond.wait_for(&mut state, remaining);
                        }
                    }
                    if state.tokens > 0 {
                        // A finishing transaction promoted this waiter;
                        // its slot transfers without touching the
                        // controller again. Promoted work runs even
                        // while draining — graceful, not abrupt. A token
                        // beats a concurrent timeout: the slot is ours.
                        state.tokens -= 1;
                        return GateOutcome::Run;
                    }
                    if state.draining {
                        // Stop waiting: give the queue slot back and
                        // report the arrival as shed so accounting stays
                        // exact (submitted = finished + shed).
                        self.controller.cancel_queued();
                        incr(CounterKind::TxnShed);
                        self.cond.notify_all();
                        return GateOutcome::Shed;
                    }
                    if let Some(limit) = deadline {
                        if parked.elapsed() >= limit {
                            // Same slot-return dance as the drain path,
                            // under the distinct timed-out outcome.
                            self.controller.cancel_queued();
                            incr(CounterKind::TxnTimedOut);
                            self.cond.notify_all();
                            return GateOutcome::TimedOut;
                        }
                    }
                }
            }
        }
    }

    /// Reports one admitted transaction finished, promoting a queued
    /// waiter into the freed slot if any is parked.
    pub(crate) fn finish(&self) {
        let mut state = self.state.lock();
        if self.controller.finish() {
            state.tokens += 1;
            self.cond.notify_one();
        } else if state.draining {
            // The slot was freed outright; the drain may now be done.
            self.cond.notify_all();
        }
    }

    /// Sheds new arrivals from now on and blocks until everything already
    /// admitted or queued has finished. Idempotent.
    pub(crate) fn close(&self) {
        let mut state = self.state.lock();
        state.draining = true;
        self.cond.notify_all();
        while self.controller.active() > 0 || self.controller.queued() > 0 {
            self.cond.wait(&mut state);
        }
    }

    /// Transactions currently holding execution slots.
    pub(crate) fn active(&self) -> usize {
        self.controller.active()
    }

    /// Transactions currently parked in the admission queue.
    pub(crate) fn queued(&self) -> usize {
        self.controller.queued()
    }
}
