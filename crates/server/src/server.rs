//! The server: open → prepare → execute → close.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use dora_common::prelude::*;
use dora_core::{DoraConfig, TxnProgram};
use dora_engine::{build_engine_with, ExecutionEngine};
use dora_metrics::{incr, CounterKind};
use dora_storage::Database;
use dora_workloads::Workload;

use crate::gate::{AdmissionConfig, Gate, GateOutcome};
use crate::session::Session;
use crate::statement::{Params, Statement, StatementKind};

/// How a submitted transaction ended, as reported to the client.
///
/// The first three mirror [`TxnOutcome`]; [`Shed`](Self::Shed) is the
/// admission controller's overload response — the transaction never
/// executed and the client should back off or retry later.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The transaction committed.
    Committed,
    /// The transaction aborted for workload reasons.
    Aborted,
    /// The transaction exhausted its deadlock-retry budget.
    GaveUp,
    /// The admission controller rejected the transaction without running
    /// it (queue full at saturation, or the server is draining).
    Shed,
}

impl From<TxnOutcome> for SubmitOutcome {
    fn from(outcome: TxnOutcome) -> Self {
        match outcome {
            TxnOutcome::Committed => SubmitOutcome::Committed,
            TxnOutcome::Aborted => SubmitOutcome::Aborted,
            TxnOutcome::GaveUp => SubmitOutcome::GaveUp,
        }
    }
}

impl SubmitOutcome {
    /// `true` only for [`Committed`](Self::Committed).
    pub fn is_committed(self) -> bool {
        self == SubmitOutcome::Committed
    }

    /// `true` only for [`Shed`](Self::Shed).
    pub fn is_shed(self) -> bool {
        self == SubmitOutcome::Shed
    }
}

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Which execution architecture serves the database.
    pub engine: EngineKind,
    /// DORA executors bound per table (ignored by the baseline).
    pub executors_per_table: usize,
    /// DORA engine configuration (ignored by the baseline).
    pub dora: DoraConfig,
    /// Admission policy wired into every submit; `None` disables shedding
    /// and queueing entirely (every arrival runs — the A/B baseline the
    /// saturation experiment compares against).
    pub admission: Option<AdmissionConfig>,
    /// Default per-session in-flight window ([`Server::session`]); a
    /// session's concurrent submitters block past this depth, which is
    /// both client-side backpressure and per-session fairness — no single
    /// session can occupy more than `session_window` execution slots.
    pub session_window: usize,
}

impl ServerConfig {
    /// A configuration for `engine` with admission sized to the machine
    /// (one execution slot per hardware context, queue twice as deep).
    pub fn new(engine: EngineKind) -> Self {
        let contexts = dora_common::config::num_cpus();
        Self {
            engine,
            executors_per_table: 2,
            dora: DoraConfig::default(),
            admission: Some(AdmissionConfig::for_slots(contexts)),
            session_window: 8,
        }
    }

    /// A small-footprint configuration for tests.
    pub fn for_tests(engine: EngineKind) -> Self {
        Self {
            engine,
            executors_per_table: 2,
            dora: DoraConfig::for_tests(),
            admission: Some(AdmissionConfig {
                max_active: 4,
                max_queued: 8,
            }),
            session_window: 4,
        }
    }

    /// This configuration with a different admission policy.
    pub fn with_admission(self, admission: Option<AdmissionConfig>) -> Self {
        Self { admission, ..self }
    }
}

/// Shared server internals; sessions keep the core alive even if the
/// [`Server`] handle is dropped first.
pub(crate) struct ServerCore {
    engine: Arc<dyn ExecutionEngine>,
    gate: Gate,
    closed: AtomicBool,
    session_window: usize,
}

impl ServerCore {
    /// One gated submit: admission decides, the engine executes, the slot
    /// is returned. This is the *only* path work reaches the engine
    /// through, so the admission policy really does govern everything.
    pub(crate) fn submit(&self, statement: &Statement, params: &Params) -> SubmitOutcome {
        match self.gate.admit() {
            GateOutcome::Shed => SubmitOutcome::Shed,
            GateOutcome::Run => {
                let outcome = self.execute(statement, params);
                self.gate.finish();
                outcome
            }
        }
    }

    fn execute(&self, statement: &Statement, params: &Params) -> SubmitOutcome {
        match &*statement.kind {
            // Compile-once/execute-many: the shared step list behind the
            // handle runs directly, no per-call lowering.
            StatementKind::Prepared(prepared) => self.engine.execute_prepared(prepared).into(),
            // Per-binding build (routing keys are baked in at build time),
            // then the engine's prepare-and-run path.
            StatementKind::Template(build) => match build(self.engine.db(), params) {
                Ok(program) => self.engine.execute_program(program).into(),
                Err(_) => SubmitOutcome::Aborted,
            },
        }
    }

    pub(crate) fn session_window(&self) -> usize {
        self.session_window
    }
}

/// A database being served: holds the execution engine behind the
/// admission gate, hands out [`Statement`]s and [`Session`]s, and drains
/// gracefully on [`close`](Self::close).
pub struct Server {
    core: Arc<ServerCore>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("engine", &self.core.engine.name())
            .field("active", &self.core.gate.active())
            .field("queued", &self.core.gate.queued())
            .field("closed", &self.core.closed.load(Ordering::Relaxed))
            .finish()
    }
}

impl Server {
    /// Opens `db` for serving: builds the configured execution engine over
    /// it and binds `workload` (which must already be set up — the server
    /// serves data, it does not load it).
    pub fn open(
        db: Arc<Database>,
        workload: Arc<dyn Workload>,
        config: ServerConfig,
    ) -> DbResult<Self> {
        let engine = build_engine_with(config.engine, db, config.dora.clone());
        engine.bind(workload, config.executors_per_table)?;
        Ok(Self {
            core: Arc::new(ServerCore {
                engine,
                gate: Gate::new(config.admission),
                closed: AtomicBool::new(false),
                session_window: config.session_window.max(1),
            }),
        })
    }

    /// Compiles `program` once into a reusable fixed-parameter
    /// [`Statement`]. Every execution of the returned handle reuses the
    /// compiled form — prepare once, execute many.
    pub fn prepare(&self, program: TxnProgram) -> DbResult<Statement> {
        Ok(Statement::prepared(self.core.engine.prepare(program)?))
    }

    /// Registers a parameterized statement: `build` is invoked per
    /// parameter binding to produce the program for those routing keys
    /// (see [`Statement`] for why parameter substitution needs a builder).
    pub fn prepare_template(
        &self,
        name: &'static str,
        build: impl Fn(&Database, &Params) -> DbResult<TxnProgram> + Send + Sync + 'static,
    ) -> Statement {
        Statement::template(name, build)
    }

    /// Opens a client session with the configured in-flight window.
    pub fn session(&self) -> Session {
        incr(CounterKind::SessionsOpened);
        Session::new(Arc::clone(&self.core), self.core.session_window())
    }

    /// Opens a client session with an explicit in-flight window (clamped
    /// to at least 1).
    pub fn session_with_window(&self, window: usize) -> Session {
        incr(CounterKind::SessionsOpened);
        Session::new(Arc::clone(&self.core), window.max(1))
    }

    /// The underlying storage manager.
    pub fn db(&self) -> &Arc<Database> {
        self.core.engine.db()
    }

    /// The serving architecture.
    pub fn engine_kind(&self) -> EngineKind {
        self.core.engine.kind()
    }

    /// Transactions currently executing.
    pub fn in_flight(&self) -> usize {
        self.core.gate.active()
    }

    /// Transactions currently parked in the admission queue.
    pub fn queue_depth(&self) -> usize {
        self.core.gate.queued()
    }

    /// `true` once [`close`](Self::close) has begun.
    pub fn is_closed(&self) -> bool {
        self.core.closed.load(Ordering::Acquire)
    }

    /// Graceful shutdown: new submissions are shed immediately, everything
    /// already admitted or queued runs to completion, then the engine's
    /// threads stop. Blocks until the drain is complete; idempotent
    /// (late callers wait for the same drain). Sessions remain valid but
    /// every subsequent submit returns [`SubmitOutcome::Shed`].
    pub fn close(&self) {
        self.core.gate.close();
        if !self.core.closed.swap(true, Ordering::AcqRel) {
            self.core.engine.shutdown();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.close();
    }
}
