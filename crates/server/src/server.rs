//! The server: open → prepare → execute → close.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dora_common::prelude::*;
use dora_core::{DoraConfig, TxnProgram};
use dora_engine::{build_engine_with, ExecutionEngine};
use dora_metrics::{incr, CounterKind};
use dora_storage::Database;
use dora_workloads::Workload;

use crate::gate::{AdmissionConfig, Gate, GateOutcome};
use crate::session::Session;
use crate::statement::{Params, Statement, StatementKind};

/// How a submitted transaction ended, as reported to the client.
///
/// The first three mirror [`TxnOutcome`]; [`Shed`](Self::Shed) is the
/// admission controller's overload response — the transaction never
/// executed and the client should back off or retry later.
/// [`TimedOut`](Self::TimedOut) and [`Failed`](Self::Failed) come from the
/// resilience layer: a submit deadline expiring in the admission queue, and
/// a commit whose durability was lost for good.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The transaction committed.
    Committed,
    /// The transaction aborted for workload reasons.
    Aborted,
    /// The transaction exhausted its deadlock-retry budget.
    GaveUp,
    /// The admission controller rejected the transaction without running
    /// it (queue full at saturation, or the server is draining).
    Shed,
    /// The submission exceeded its deadline while parked in the admission
    /// queue; it never executed and is safe to retry later.
    TimedOut,
    /// The transaction executed but its commit can never become durable:
    /// its log stream's device failed past the retry budget
    /// ([`DbError::DurabilityLost`]). With early lock release its effects
    /// may already be applied in memory (a ghost commit), so clients must
    /// **not** resubmit — re-running could apply it twice.
    Failed,
}

impl From<TxnOutcome> for SubmitOutcome {
    fn from(outcome: TxnOutcome) -> Self {
        match outcome {
            TxnOutcome::Committed => SubmitOutcome::Committed,
            TxnOutcome::Aborted => SubmitOutcome::Aborted,
            TxnOutcome::GaveUp => SubmitOutcome::GaveUp,
        }
    }
}

impl SubmitOutcome {
    /// `true` only for [`Committed`](Self::Committed).
    pub fn is_committed(self) -> bool {
        self == SubmitOutcome::Committed
    }

    /// `true` only for [`Shed`](Self::Shed).
    pub fn is_shed(self) -> bool {
        self == SubmitOutcome::Shed
    }

    /// `true` only for [`TimedOut`](Self::TimedOut).
    pub fn is_timed_out(self) -> bool {
        self == SubmitOutcome::TimedOut
    }

    /// `true` only for [`Failed`](Self::Failed).
    pub fn is_failed(self) -> bool {
        self == SubmitOutcome::Failed
    }

    /// `true` for outcomes a client may safely resubmit: the transaction
    /// either never executed ([`Shed`](Self::Shed),
    /// [`TimedOut`](Self::TimedOut)) or aborted cleanly
    /// ([`Aborted`](Self::Aborted), [`GaveUp`](Self::GaveUp)). `false` for
    /// [`Committed`](Self::Committed) and — crucially — for
    /// [`Failed`](Self::Failed), whose ghost commit must never be re-run.
    pub fn is_safe_to_resubmit(self) -> bool {
        matches!(
            self,
            SubmitOutcome::Aborted
                | SubmitOutcome::GaveUp
                | SubmitOutcome::Shed
                | SubmitOutcome::TimedOut
        )
    }
}

/// Bounded, jittered-backoff retry for aborted submissions, applied inside
/// [`Session::execute_with`](crate::Session::execute_with). Only
/// [`SubmitOutcome::Aborted`] is retried: shed and timed-out work never ran
/// (the client decides whether to re-offer load), gave-up already burned an
/// engine-level retry budget, and failed must never be re-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Re-submissions after the first attempt; `0` disables retrying.
    pub max_retries: u32,
    /// Base backoff before the first retry, in microseconds; doubled per
    /// attempt (capped at 64x) with uniform jitter over the top half.
    pub backoff_micros: u64,
    /// Upper bound on any single backoff, in microseconds.
    pub backoff_cap_micros: u64,
}

impl Default for RetryPolicy {
    /// Retrying is opt-in: the default policy never resubmits.
    fn default() -> Self {
        Self {
            max_retries: 0,
            backoff_micros: 100,
            backoff_cap_micros: 5_000,
        }
    }
}

impl RetryPolicy {
    /// A policy that retries aborts up to `max_retries` times with the
    /// default backoff shape.
    pub fn retries(max_retries: u32) -> Self {
        Self {
            max_retries,
            ..Self::default()
        }
    }

    /// The backoff before retry number `attempt` (0-based). `jitter` is any
    /// random word; the sleep lands uniformly in `[base/2, base]` so
    /// synchronized retry herds spread out.
    pub(crate) fn backoff_for(&self, attempt: u32, jitter: u64) -> Duration {
        let base = self
            .backoff_micros
            .saturating_mul(1u64 << attempt.min(6))
            .min(self.backoff_cap_micros);
        let span = base / 2;
        let jittered = if span > 0 {
            span + jitter % (span + 1)
        } else {
            base
        };
        Duration::from_micros(jittered)
    }
}

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Which execution architecture serves the database.
    pub engine: EngineKind,
    /// DORA executors bound per table (ignored by the baseline).
    pub executors_per_table: usize,
    /// DORA engine configuration (ignored by the baseline).
    pub dora: DoraConfig,
    /// Admission policy wired into every submit; `None` disables shedding
    /// and queueing entirely (every arrival runs — the A/B baseline the
    /// saturation experiment compares against).
    pub admission: Option<AdmissionConfig>,
    /// Default per-session in-flight window ([`Server::session`]); a
    /// session's concurrent submitters block past this depth, which is
    /// both client-side backpressure and per-session fairness — no single
    /// session can occupy more than `session_window` execution slots.
    pub session_window: usize,
    /// Per-submit deadline: a submission still parked in the admission
    /// queue when it expires gives its queue slot back and returns
    /// [`SubmitOutcome::TimedOut`] instead of waiting forever. It also
    /// bounds the total time the retry policy may spend on one submission.
    /// `None` (the default) waits indefinitely.
    pub submit_deadline: Option<Duration>,
    /// Retry policy for aborted submissions (default: off).
    pub retry: RetryPolicy,
    /// Serve read-only statements from a lock-free MVCC snapshot instead of
    /// running them through the engine's locked path (default: on). Each
    /// eligible submission pins a fresh snapshot, so it sees every commit
    /// published before it started and never blocks — or is blocked by —
    /// OLTP writers.
    pub snapshot_reads: bool,
}

impl ServerConfig {
    /// A configuration for `engine` with admission sized to the machine
    /// (one execution slot per hardware context, queue twice as deep).
    pub fn new(engine: EngineKind) -> Self {
        let contexts = dora_common::config::num_cpus();
        Self {
            engine,
            executors_per_table: 2,
            dora: DoraConfig::default(),
            admission: Some(AdmissionConfig::for_slots(contexts)),
            session_window: 8,
            submit_deadline: None,
            retry: RetryPolicy::default(),
            snapshot_reads: true,
        }
    }

    /// A small-footprint configuration for tests.
    pub fn for_tests(engine: EngineKind) -> Self {
        Self {
            engine,
            executors_per_table: 2,
            dora: DoraConfig::for_tests(),
            admission: Some(AdmissionConfig {
                max_active: 4,
                max_queued: 8,
            }),
            session_window: 4,
            submit_deadline: None,
            retry: RetryPolicy::default(),
            snapshot_reads: true,
        }
    }

    /// This configuration with a different admission policy.
    pub fn with_admission(self, admission: Option<AdmissionConfig>) -> Self {
        Self { admission, ..self }
    }

    /// This configuration with a per-submit deadline.
    pub fn with_submit_deadline(self, deadline: Duration) -> Self {
        Self {
            submit_deadline: Some(deadline),
            ..self
        }
    }

    /// This configuration with a retry policy for aborted submissions.
    pub fn with_retry(self, retry: RetryPolicy) -> Self {
        Self { retry, ..self }
    }

    /// This configuration with snapshot serving of read-only statements
    /// switched on or off.
    pub fn with_snapshot_reads(self, snapshot_reads: bool) -> Self {
        Self {
            snapshot_reads,
            ..self
        }
    }
}

/// Shared server internals; sessions keep the core alive even if the
/// [`Server`] handle is dropped first.
pub(crate) struct ServerCore {
    engine: Arc<dyn ExecutionEngine>,
    gate: Gate,
    closed: AtomicBool,
    session_window: usize,
    submit_deadline: Option<Duration>,
    retry: RetryPolicy,
    snapshot_reads: bool,
}

impl ServerCore {
    /// One gated submit: admission decides (within the configured
    /// deadline), the engine executes, the slot is returned. This is the
    /// *only* path work reaches the engine through, so the admission
    /// policy really does govern everything.
    pub(crate) fn submit(&self, statement: &Statement, params: &Params) -> SubmitOutcome {
        match self.gate.admit_within(self.submit_deadline) {
            GateOutcome::Shed => SubmitOutcome::Shed,
            GateOutcome::TimedOut => SubmitOutcome::TimedOut,
            GateOutcome::Run => {
                let outcome = self.execute(statement, params);
                self.gate.finish();
                outcome
            }
        }
    }

    fn execute(&self, statement: &Statement, params: &Params) -> SubmitOutcome {
        let result = match &*statement.kind {
            // Read-only statements skip both engines entirely: they run on
            // this thread against a freshly pinned snapshot, with no DORA
            // routing and no lock-manager traffic.
            StatementKind::Prepared(prepared) if self.snapshot_reads && prepared.is_read_only() => {
                self.engine.execute_snapshot_checked(prepared)
            }
            // Compile-once/execute-many: the shared step list behind the
            // handle runs directly, no per-call lowering.
            StatementKind::Prepared(prepared) => self.engine.execute_prepared_checked(prepared),
            // Per-binding build (routing keys are baked in at build time),
            // then the engine's prepare-and-run path. Eligibility for the
            // snapshot path is decided per build: the program only exists
            // once the parameters are bound.
            StatementKind::Template(build) => match build(self.engine.db(), params) {
                Ok(program) if self.snapshot_reads && program.is_read_only() => self
                    .engine
                    .prepare(program)
                    .and_then(|prepared| self.engine.execute_snapshot_checked(&prepared)),
                Ok(program) => self.engine.execute_program_checked(program),
                Err(_) => return SubmitOutcome::Aborted,
            },
        };
        match result {
            Ok(outcome) => outcome.into(),
            // Durability lost for good: surface the distinct, non-retryable
            // outcome so no layer (including our own retry policy) re-runs
            // a possible ghost commit.
            Err(DbError::DurabilityLost) => SubmitOutcome::Failed,
            Err(_) => SubmitOutcome::Aborted,
        }
    }

    pub(crate) fn session_window(&self) -> usize {
        self.session_window
    }

    pub(crate) fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    pub(crate) fn submit_deadline(&self) -> Option<Duration> {
        self.submit_deadline
    }
}

/// A database being served: holds the execution engine behind the
/// admission gate, hands out [`Statement`]s and [`Session`]s, and drains
/// gracefully on [`close`](Self::close).
pub struct Server {
    core: Arc<ServerCore>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("engine", &self.core.engine.name())
            .field("active", &self.core.gate.active())
            .field("queued", &self.core.gate.queued())
            .field("closed", &self.core.closed.load(Ordering::Relaxed))
            .finish()
    }
}

impl Server {
    /// Opens `db` for serving: builds the configured execution engine over
    /// it and binds `workload` (which must already be set up — the server
    /// serves data, it does not load it).
    pub fn open(
        db: Arc<Database>,
        workload: Arc<dyn Workload>,
        config: ServerConfig,
    ) -> DbResult<Self> {
        let engine = build_engine_with(config.engine, db, config.dora.clone());
        engine.bind(workload, config.executors_per_table)?;
        Ok(Self {
            core: Arc::new(ServerCore {
                engine,
                gate: Gate::new(config.admission),
                closed: AtomicBool::new(false),
                session_window: config.session_window.max(1),
                submit_deadline: config.submit_deadline,
                retry: config.retry,
                snapshot_reads: config.snapshot_reads,
            }),
        })
    }

    /// Compiles `program` once into a reusable fixed-parameter
    /// [`Statement`]. Every execution of the returned handle reuses the
    /// compiled form — prepare once, execute many.
    pub fn prepare(&self, program: TxnProgram) -> DbResult<Statement> {
        Ok(Statement::prepared(self.core.engine.prepare(program)?))
    }

    /// Registers a parameterized statement: `build` is invoked per
    /// parameter binding to produce the program for those routing keys
    /// (see [`Statement`] for why parameter substitution needs a builder).
    pub fn prepare_template(
        &self,
        name: &'static str,
        build: impl Fn(&Database, &Params) -> DbResult<TxnProgram> + Send + Sync + 'static,
    ) -> Statement {
        Statement::template(name, build)
    }

    /// Opens a client session with the configured in-flight window.
    pub fn session(&self) -> Session {
        incr(CounterKind::SessionsOpened);
        Session::new(Arc::clone(&self.core), self.core.session_window())
    }

    /// Opens a client session with an explicit in-flight window (clamped
    /// to at least 1).
    pub fn session_with_window(&self, window: usize) -> Session {
        incr(CounterKind::SessionsOpened);
        Session::new(Arc::clone(&self.core), window.max(1))
    }

    /// The underlying storage manager.
    pub fn db(&self) -> &Arc<Database> {
        self.core.engine.db()
    }

    /// The serving architecture.
    pub fn engine_kind(&self) -> EngineKind {
        self.core.engine.kind()
    }

    /// The bind-time conflict-analysis report for the served workload
    /// (probe-free steps, auto-serialized programs, routing coverage).
    /// `None` when the architecture runs no conflict analysis or the
    /// workload declares no step templates.
    pub fn conflict_report(&self) -> Option<String> {
        self.core.engine.conflict_report()
    }

    /// Transactions currently executing.
    pub fn in_flight(&self) -> usize {
        self.core.gate.active()
    }

    /// Transactions currently parked in the admission queue.
    pub fn queue_depth(&self) -> usize {
        self.core.gate.queued()
    }

    /// `true` once [`close`](Self::close) has begun.
    pub fn is_closed(&self) -> bool {
        self.core.closed.load(Ordering::Acquire)
    }

    /// Graceful shutdown: new submissions are shed immediately, everything
    /// already admitted or queued runs to completion, then the engine's
    /// threads stop. Blocks until the drain is complete; idempotent
    /// (late callers wait for the same drain). Sessions remain valid but
    /// every subsequent submit returns [`SubmitOutcome::Shed`].
    pub fn close(&self) {
        self.core.gate.close();
        if !self.core.closed.swap(true, Ordering::AcqRel) {
            self.core.engine.shutdown();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.close();
    }
}
