//! The serving front-end for the DORA reproduction: the boundary a client
//! programs against, productionized.
//!
//! The lifecycle is the classical one:
//!
//! 1. [`Server::open`] a database with either execution architecture
//!    behind it (conventional baseline or data-oriented).
//! 2. [`Server::prepare`] a transaction program once into a [`Statement`]
//!    handle — compile-once/execute-many — or register a parameterized
//!    [`Server::prepare_template`].
//! 3. Open [`Session`]s and execute parameter batches concurrently. Each
//!    session has a bounded in-flight window (client backpressure and
//!    per-session fairness); every submit then passes the server's
//!    admission gate, which queues at saturation and sheds past the
//!    configured threshold instead of letting throughput collapse — the
//!    paper's admission-control premise (Figures 6 and 8) as a real API.
//! 4. [`Server::close`] drains gracefully: late arrivals are shed,
//!    admitted and queued work finishes, then the engine stops.
//!
//! Shed, queue, and session counts surface through `dora-metrics`
//! ([`CounterKind::TxnShed`], [`CounterKind::TxnQueued`],
//! [`CounterKind::SessionsOpened`]); the `repro saturation` experiment in
//! `dora-bench` drives this API across offered-load sweeps.
//!
//! ```
//! use std::sync::Arc;
//! use dora_common::prelude::*;
//! use dora_server::{Server, ServerConfig};
//! use dora_workloads::{TpcB, Workload};
//!
//! let tpcb = TpcB::with_accounts(4, 64);
//! let db = dora_storage::Database::for_tests();
//! tpcb.setup(&db).unwrap();
//! let workload: Arc<TpcB> = Arc::new(tpcb);
//!
//! let server = Server::open(
//!     Arc::clone(&db),
//!     workload.clone(),
//!     ServerConfig::for_tests(EngineKind::Dora),
//! )
//! .unwrap();
//!
//! // Prepare once...
//! let program = workload.account_update_program(&db, 1, 1, 1, 7.5).unwrap();
//! let transfer = server.prepare(program).unwrap();
//!
//! // ...execute many.
//! let session = server.session();
//! for _ in 0..4 {
//!     assert!(session.execute(&transfer).is_committed());
//! }
//!
//! server.close();
//! assert!(session.execute(&transfer).is_shed());
//! ```
//!
//! [`CounterKind::TxnShed`]: dora_metrics::CounterKind::TxnShed
//! [`CounterKind::TxnQueued`]: dora_metrics::CounterKind::TxnQueued
//! [`CounterKind::SessionsOpened`]: dora_metrics::CounterKind::SessionsOpened

mod gate;
mod server;
mod session;
mod statement;

pub use gate::AdmissionConfig;
pub use server::{RetryPolicy, Server, ServerConfig, SubmitOutcome};
pub use session::Session;
pub use statement::{Params, Statement, TemplateFn};

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use dora_common::prelude::*;
    use dora_storage::Database;
    use dora_workloads::{TpcB, Workload};

    use super::*;

    fn served(engine: EngineKind, admission: Option<AdmissionConfig>) -> (Server, Statement) {
        let tpcb = TpcB::with_accounts(4, 64);
        let db = Database::for_tests();
        tpcb.setup(&db).unwrap();
        let workload = Arc::new(tpcb);
        let server = Server::open(
            Arc::clone(&db),
            workload.clone(),
            ServerConfig::for_tests(engine).with_admission(admission),
        )
        .unwrap();
        let program = workload.account_update_program(&db, 1, 1, 1, 7.5).unwrap();
        let statement = server.prepare(program).unwrap();
        (server, statement)
    }

    #[test]
    fn prepared_statement_executes_many_times_on_both_engines() {
        for kind in [EngineKind::Baseline, EngineKind::Dora] {
            let (server, statement) = served(kind, None);
            assert!(statement.is_compiled());
            let session = server.session();
            for _ in 0..8 {
                assert_eq!(session.execute(&statement), SubmitOutcome::Committed);
            }
            server.close();
        }
    }

    #[test]
    fn template_statement_builds_per_binding() {
        let tpcb = TpcB::with_accounts(4, 64);
        let db = Database::for_tests();
        tpcb.setup(&db).unwrap();
        let workload = Arc::new(tpcb);
        let server = Server::open(
            Arc::clone(&db),
            Arc::clone(&workload) as Arc<dyn dora_workloads::Workload>,
            ServerConfig::for_tests(EngineKind::Dora),
        )
        .unwrap();

        let spec = Arc::clone(&workload);
        let transfer = server.prepare_template("tpcb-account-update", move |db, params| {
            let (branch, account, teller, amount) = match params.as_slice() {
                [Value::Int(b), Value::Int(a), Value::Int(t), Value::Float(m)] => (*b, *a, *t, *m),
                _ => {
                    return Err(DbError::InvalidOperation(
                        "tpcb params: [branch, account, teller, amount]".to_string(),
                    ))
                }
            };
            spec.account_update_program(db, branch, account, teller, amount)
        });
        assert!(!transfer.is_compiled());

        let session = server.session();
        let bindings: Vec<Params> = (0..4i64)
            .map(|i| {
                let branch = i % 4 + 1;
                vec![
                    Value::Int(branch),
                    Value::Int((branch - 1) * 64 + 1 + i),
                    Value::Int((branch - 1) * 10 + 1),
                    Value::Float(10.0 + i as f64),
                ]
            })
            .collect();
        let outcomes = session.execute_batch(&transfer, &bindings);
        assert!(outcomes.iter().all(|o| o.is_committed()));

        // A malformed binding aborts rather than panicking or wedging.
        assert_eq!(
            session.execute_with(&transfer, &vec![Value::Int(1)]),
            SubmitOutcome::Aborted
        );
        server.close();
    }

    #[test]
    fn close_is_idempotent_and_sheds_later_submits() {
        let (server, statement) = served(EngineKind::Baseline, None);
        let session = server.session();
        assert!(session.execute(&statement).is_committed());
        server.close();
        server.close();
        assert!(server.is_closed());
        assert!(session.execute(&statement).is_shed());
        assert_eq!(server.in_flight(), 0);
        assert_eq!(server.queue_depth(), 0);
    }

    #[test]
    fn read_only_statements_are_served_from_snapshots() {
        use dora_metrics::{current_thread_snapshot, CounterKind};
        use dora_workloads::AnalyticalScan;

        for kind in [EngineKind::Baseline, EngineKind::Dora] {
            let tpcb = TpcB::with_accounts(4, 64);
            let db = Database::for_tests();
            tpcb.setup(&db).unwrap();
            let workload = Arc::new(tpcb);
            let server = Server::open(
                Arc::clone(&db),
                workload.clone(),
                ServerConfig::for_tests(kind),
            )
            .unwrap();

            let sink = AnalyticalScan::sink();
            let scan = server
                .prepare(AnalyticalScan::tpcb_branch_balances(&db, Arc::clone(&sink)).unwrap())
                .unwrap();
            assert!(scan.snapshot_eligible());
            let transfer = server
                .prepare(workload.account_update_program(&db, 1, 1, 1, 7.5).unwrap())
                .unwrap();
            assert!(!transfer.snapshot_eligible());

            let before = current_thread_snapshot();
            let session = server.session();
            assert_eq!(session.execute(&scan), SubmitOutcome::Committed);
            let after = current_thread_snapshot();
            assert!(
                after.since(&before).counter(CounterKind::SnapshotsTaken) >= 1,
                "{kind:?}: eligible statement must pin a snapshot"
            );
            assert_eq!(sink.lock().rows_scanned, 4 * 64);
            server.close();
        }
    }

    #[test]
    fn snapshot_serving_can_be_disabled() {
        use dora_metrics::{current_thread_snapshot, CounterKind};
        use dora_workloads::AnalyticalScan;

        let tpcb = TpcB::with_accounts(2, 32);
        let db = Database::for_tests();
        tpcb.setup(&db).unwrap();
        let workload = Arc::new(tpcb);
        let server = Server::open(
            Arc::clone(&db),
            workload.clone(),
            ServerConfig::for_tests(EngineKind::Baseline).with_snapshot_reads(false),
        )
        .unwrap();

        let sink = AnalyticalScan::sink();
        let scan = server
            .prepare(AnalyticalScan::tpcb_branch_balances(&db, Arc::clone(&sink)).unwrap())
            .unwrap();
        let before = current_thread_snapshot();
        let session = server.session();
        assert_eq!(session.execute(&scan), SubmitOutcome::Committed);
        let after = current_thread_snapshot();
        assert_eq!(
            after.since(&before).counter(CounterKind::SnapshotsTaken),
            0,
            "disabled snapshot serving must use the locked path"
        );
        assert_eq!(sink.lock().rows_scanned, 2 * 32);
        server.close();
    }

    #[test]
    fn session_window_caps_concurrent_submitters() {
        let (server, statement) = served(EngineKind::Baseline, None);
        let session = server.session_with_window(2);
        assert_eq!(session.window(), 2);

        let mut handles = Vec::new();
        for _ in 0..6 {
            let session = session.clone();
            let statement = statement.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..16 {
                    assert!(session.execute(&statement).is_committed());
                    // The window is honored at every instant the caller
                    // can observe it.
                    assert!(session.in_flight() <= 2);
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(session.in_flight(), 0);
        server.close();
    }
}
