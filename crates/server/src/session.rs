//! Client sessions: the submit surface with a bounded in-flight window.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

use dora_metrics::{incr, CounterKind};

use crate::server::{ServerCore, SubmitOutcome};
use crate::statement::{Params, Statement};

/// The per-session in-flight bound: `acquire` blocks while the window is
/// full, `release` wakes one blocked submitter. This is client-side
/// backpressure (a flooding session stalls in its own window instead of
/// stacking work on the server) and per-session fairness (no session can
/// hold more than `limit` execution slots, however many threads share it).
struct Window {
    in_flight: Mutex<usize>,
    freed: Condvar,
    limit: usize,
}

impl Window {
    fn new(limit: usize) -> Self {
        Self {
            in_flight: Mutex::new(0),
            freed: Condvar::new(),
            limit: limit.max(1),
        }
    }

    fn acquire(&self) {
        let mut in_flight = self.in_flight.lock();
        while *in_flight >= self.limit {
            self.freed.wait(&mut in_flight);
        }
        *in_flight += 1;
    }

    fn release(&self) {
        let mut in_flight = self.in_flight.lock();
        debug_assert!(*in_flight > 0, "release without a matching acquire");
        *in_flight -= 1;
        self.freed.notify_one();
    }

    fn occupancy(&self) -> usize {
        *self.in_flight.lock()
    }
}

/// One client's connection to a [`Server`](crate::Server).
///
/// Sessions are cheap, `Send + Sync`, and independent: threads sharing a
/// session share its in-flight window, threads on different sessions only
/// contend at the server's admission gate. A session outlives `close` —
/// submits after the server drains simply return
/// [`SubmitOutcome::Shed`].
pub struct Session {
    core: Arc<ServerCore>,
    window: Arc<Window>,
    /// xorshift state for retry-backoff jitter; shared by clones (like the
    /// window) so a session's worker threads draw from one stream.
    jitter: Arc<AtomicU64>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("window", &self.window.limit)
            .field("in_flight", &self.window.occupancy())
            .finish()
    }
}

impl Clone for Session {
    /// Clones share the same in-flight window — hand clones to worker
    /// threads when they should count as *one* client; open separate
    /// sessions when they should not.
    fn clone(&self) -> Self {
        Self {
            core: Arc::clone(&self.core),
            window: Arc::clone(&self.window),
            jitter: Arc::clone(&self.jitter),
        }
    }
}

impl Session {
    pub(crate) fn new(core: Arc<ServerCore>, window: usize) -> Self {
        Self {
            core,
            window: Arc::new(Window::new(window)),
            jitter: Arc::new(AtomicU64::new(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next word of the session's jitter stream (xorshift64; cheap, racy by
    /// design — jitter needs no sequential consistency).
    fn next_jitter(&self) -> u64 {
        let mut x = self.jitter.load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.jitter.store(x, Ordering::Relaxed);
        x
    }

    /// Executes a fixed-parameter statement (or a template with no
    /// parameters), blocking first if the session window is full.
    pub fn execute(&self, statement: &Statement) -> SubmitOutcome {
        self.execute_with(statement, &Params::new())
    }

    /// Executes `statement` with one parameter binding, blocking first if
    /// the session window is full. Fixed-parameter statements ignore
    /// `params`.
    ///
    /// If the server was configured with a [`RetryPolicy`], aborted
    /// submissions are re-run with jittered backoff, within the submit
    /// deadline; the outcome reported is the last attempt's. Only aborts
    /// retry — shed/timed-out work never ran (re-offering load to an
    /// overloaded gate makes overload worse), and a failed (ghost) commit
    /// must never be re-run.
    ///
    /// [`RetryPolicy`]: crate::RetryPolicy
    pub fn execute_with(&self, statement: &Statement, params: &Params) -> SubmitOutcome {
        self.window.acquire();
        let outcome = self.submit_with_retry(statement, params);
        self.window.release();
        outcome
    }

    fn submit_with_retry(&self, statement: &Statement, params: &Params) -> SubmitOutcome {
        let policy = self.core.retry_policy();
        let deadline = self.core.submit_deadline();
        let started = Instant::now();
        let mut outcome = self.core.submit(statement, params);
        for attempt in 0..policy.max_retries {
            if outcome != SubmitOutcome::Aborted {
                break;
            }
            if let Some(limit) = deadline {
                if started.elapsed() >= limit {
                    break;
                }
            }
            incr(CounterKind::TxnRetried);
            std::thread::sleep(policy.backoff_for(attempt, self.next_jitter()));
            outcome = self.core.submit(statement, params);
        }
        outcome
    }

    /// Executes one binding after another, returning the per-binding
    /// outcomes in order. Batches from concurrent threads interleave
    /// freely subject to the shared window.
    pub fn execute_batch(&self, statement: &Statement, bindings: &[Params]) -> Vec<SubmitOutcome> {
        bindings
            .iter()
            .map(|params| self.execute_with(statement, params))
            .collect()
    }

    /// Submissions from this session currently inside `execute*` calls.
    pub fn in_flight(&self) -> usize {
        self.window.occupancy()
    }

    /// The session's in-flight window limit.
    pub fn window(&self) -> usize {
        self.window.limit
    }
}
