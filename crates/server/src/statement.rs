//! Prepared statements: what a client holds after [`prepare`].
//!
//! A [`TxnProgram`] bakes its routing keys into its steps when it is
//! built, so the compile-once/execute-many seam splits naturally in two:
//!
//! * [`Statement::prepared`] — a fixed-parameter program lowered once to a
//!   [`PreparedProgram`]; every execution reuses the shared step list with
//!   zero per-call compilation. The right shape for hot singleton
//!   transactions (a watchdog ping, a fixed maintenance sweep).
//! * [`Statement::template`] — a parameterized *builder*: each submitted
//!   parameter binding builds a program for those routing keys and runs it
//!   through the engine's prepare-then-execute path. The template itself
//!   (mix logic, step bodies, schema lookups) is authored and validated
//!   once; only the per-binding routing differs.
//!
//! [`prepare`]: crate::Server::prepare

use std::sync::Arc;

use dora_common::prelude::*;
use dora_core::{PreparedProgram, TxnProgram};
use dora_storage::Database;

/// One parameter binding for a template statement.
pub type Params = Vec<Value>;

/// Builds a [`TxnProgram`] for one parameter binding.
pub type TemplateFn = dyn Fn(&Database, &Params) -> DbResult<TxnProgram> + Send + Sync;

pub(crate) enum StatementKind {
    Prepared(PreparedProgram),
    Template(Arc<TemplateFn>),
}

/// A handle returned by [`Server::prepare`] / [`Server::prepare_template`]:
/// cheap to clone, shareable across sessions and threads.
///
/// [`Server::prepare`]: crate::Server::prepare
/// [`Server::prepare_template`]: crate::Server::prepare_template
#[derive(Clone)]
pub struct Statement {
    name: &'static str,
    pub(crate) kind: Arc<StatementKind>,
}

impl std::fmt::Debug for Statement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match *self.kind {
            StatementKind::Prepared(_) => "prepared",
            StatementKind::Template(_) => "template",
        };
        f.debug_struct("Statement")
            .field("name", &self.name)
            .field("kind", &kind)
            .finish()
    }
}

impl Statement {
    pub(crate) fn prepared(prepared: PreparedProgram) -> Self {
        Self {
            name: prepared.name(),
            kind: Arc::new(StatementKind::Prepared(prepared)),
        }
    }

    pub(crate) fn template(
        name: &'static str,
        build: impl Fn(&Database, &Params) -> DbResult<TxnProgram> + Send + Sync + 'static,
    ) -> Self {
        Self {
            name,
            kind: Arc::new(StatementKind::Template(Arc::new(build))),
        }
    }

    /// The statement's transaction-type label.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// `true` for fixed-parameter statements (no per-call compilation at
    /// all), `false` for parameterized templates.
    pub fn is_compiled(&self) -> bool {
        matches!(*self.kind, StatementKind::Prepared(_))
    }

    /// `true` if this statement is *statically* known to be read-only and
    /// therefore eligible for lock-free snapshot execution (when the server
    /// has snapshot reads enabled). Fixed-parameter statements answer from
    /// their compiled step list; templates answer `false` here — their
    /// programs only exist per binding, so eligibility is decided per build.
    pub fn snapshot_eligible(&self) -> bool {
        match &*self.kind {
            StatementKind::Prepared(prepared) => prepared.is_read_only(),
            StatementKind::Template(_) => false,
        }
    }
}
